"""The graphical-Lasso objective with Laplacian-like precision matrices (Eq. 2).

SGL maximises

    F(Theta) = log det(Theta) - (1/M) Tr(X^T Theta X) - beta ||Theta||_1,
    Theta = L + I / sigma^2,

over valid graph Laplacians ``L``.  The paper evaluates F approximately using
the first 50 nonzero Laplacian eigenvalues for the log-determinant term; the
same approximation is used here (configurable), which keeps the evaluation
cheap even for large graphs and matches the numbers plotted in Figs. 2, 4-6.

In the ``sigma^2 -> inf`` limit the (singular) Laplacian has log det = -inf;
following standard practice (and the paper's approximation) the zero
eigenvalue is excluded, i.e. the pseudo-determinant is used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import laplacian_quadratic_form
from repro.linalg.eigen import laplacian_eigenpairs

__all__ = ["ObjectiveTerms", "graphical_lasso_objective", "objective_terms"]


@dataclass(frozen=True)
class ObjectiveTerms:
    """The three terms of the graphical-Lasso objective (Eq. 2)."""

    log_det: float
    trace_term: float
    l1_term: float

    @property
    def value(self) -> float:
        """The objective ``F = log_det - trace_term - l1_term``."""
        return self.log_det - self.trace_term - self.l1_term


def _as_graph_and_laplacian(
    graph_or_laplacian: WeightedGraph | sp.spmatrix | np.ndarray,
) -> tuple[WeightedGraph | None, sp.csr_matrix]:
    if isinstance(graph_or_laplacian, WeightedGraph):
        return graph_or_laplacian, graph_or_laplacian.laplacian()
    return None, sp.csr_matrix(graph_or_laplacian)


def objective_terms(
    graph_or_laplacian: WeightedGraph | sp.spmatrix | np.ndarray,
    voltages: np.ndarray,
    *,
    sigma_sq: float = np.inf,
    beta: float = 0.0,
    n_eigenvalues: int = 50,
    eigensolver: str = "auto",
    seed: int | None = 0,
) -> ObjectiveTerms:
    """Evaluate the three terms of Eq. (2) separately.

    Parameters
    ----------
    graph_or_laplacian:
        The learned graph (or its Laplacian).
    voltages:
        Measurement matrix ``X`` of shape ``(N, M)``.
    sigma_sq:
        Prior variance in ``Theta = L + I/sigma^2`` (default: infinite).
    beta:
        Sparsity-regularisation weight (the paper sets it to zero; it does
        not change the edge ranking).
    n_eigenvalues:
        Number of smallest nonzero eigenvalues used for the log-det
        approximation (paper: 50).
    """
    graph, laplacian = _as_graph_and_laplacian(graph_or_laplacian)
    voltages = np.asarray(voltages, dtype=np.float64)
    n = laplacian.shape[0]
    if voltages.shape[0] != n:
        raise ValueError("voltages must have one row per node")
    n_measurements = voltages.shape[1]
    shift = 0.0 if not np.isfinite(sigma_sq) else 1.0 / sigma_sq

    k = min(n_eigenvalues, n - 1)
    values, _ = laplacian_eigenpairs(
        laplacian, k, method=eigensolver, drop_trivial=True, seed=seed
    )
    values = np.maximum(values, 1e-300)
    log_det = float(np.sum(np.log(values + shift)))
    if shift > 0:
        # Account for the trivial eigenvalue's contribution log(0 + 1/sigma^2).
        log_det += float(np.log(shift))

    quad = laplacian_quadratic_form(laplacian, voltages)
    trace_lap = float(np.sum(quad))
    trace_shift = shift * float(np.sum(voltages**2))
    trace_term = (trace_lap + trace_shift) / n_measurements

    l1_term = 0.0
    if beta != 0.0:
        if graph is not None:
            entry_sum = 4.0 * graph.total_weight + n * shift
        else:
            entry_sum = float(np.abs(laplacian).sum()) + n * shift
        l1_term = beta * entry_sum
    return ObjectiveTerms(log_det=log_det, trace_term=trace_term, l1_term=l1_term)


def graphical_lasso_objective(
    graph_or_laplacian: WeightedGraph | sp.spmatrix | np.ndarray,
    voltages: np.ndarray,
    *,
    sigma_sq: float = np.inf,
    beta: float = 0.0,
    n_eigenvalues: int = 50,
    eigensolver: str = "auto",
    seed: int | None = 0,
) -> float:
    """The objective value ``F`` of Eq. (2) (higher is better)."""
    return objective_terms(
        graph_or_laplacian,
        voltages,
        sigma_sq=sigma_sq,
        beta=beta,
        n_eigenvalues=n_eigenvalues,
        eigensolver=eigensolver,
        seed=seed,
    ).value
