"""Lightweight per-stage performance counters for the SGL hot path.

The paper's runtime study (Fig. 11) breaks SGL's near-linear runtime into its
pipeline stages: kNN construction, spanning-tree extraction, spectral
embedding, edge sensitivity ranking and edge scaling.  :class:`StageTimings`
is the instrument the learner (and the benchmark harness in
:mod:`repro.bench`) threads through that pipeline: a tiny accumulator of
wall-clock seconds and call counts per named stage.  The embedding stage is
engine-dependent: the stateless path records ``embedding``, the incremental
engine splits ``embedding`` / ``embedding_warm`` and the multilevel engine
splits ``coarsen`` / ``refine``.

Since the :mod:`repro.obs` layer landed, :class:`StageTimings` is also the
bridge into tracing: every :meth:`StageTimings.stage` entry additionally
emits a span on the ambient :class:`~repro.obs.Tracer` (when one is active)
over the *same* ``perf_counter`` window, so a traced run's per-stage span
totals reconcile exactly with the ``StageTimings`` sums — the timings are a
view derived from the spans.  :meth:`StageTimings.from_spans` rebuilds that
view from an exported trace.

The overhead is two :func:`time.perf_counter` calls plus one contextvar
lookup per stage entry, so the learner records timings unconditionally; a
fresh ``StageTimings`` is attached to every
:class:`~repro.core.sgl.SGLResult`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.obs.tracing import current_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracing import Span

__all__ = ["STAGE_NAMES", "StageStat", "StageTimings"]

#: Stage names the SGL pipeline may record, in rough pipeline order.  Used
#: by :meth:`StageTimings.from_spans` to pick stage spans out of a trace.
STAGE_NAMES: tuple[str, ...] = (
    "knn",
    "initial_tree",
    "candidate_pool",
    "partition",
    "shard_fit",
    "stitch",
    "embedding",
    "embedding_warm",
    "coarsen",
    "refine",
    "sensitivity",
    "objective",
    "edge_selection",
    "edge_scaling",
    "checkpoint",
    "drift_check",
    "publish",
)


@dataclass
class StageStat:
    """Accumulated wall-clock time of one named pipeline stage."""

    seconds: float = 0.0
    calls: int = 0

    def add(self, seconds: float) -> None:
        """Accumulate one timed interval."""
        self.seconds += seconds
        self.calls += 1


@dataclass
class StageTimings:
    """Per-stage wall-clock accumulator threaded through the SGL pipeline.

    Examples
    --------
    >>> timings = StageTimings()
    >>> with timings.stage("embedding"):
    ...     _ = sum(range(1000))
    >>> timings.stages["embedding"].calls
    1

    Under an active tracer every stage entry is also a span, and the
    accumulator is exactly the per-stage sum of those spans:

    >>> from repro.obs import Tracer, activate
    >>> tracer = Tracer()
    >>> with activate(tracer):
    ...     with timings.stage("sensitivity"):
    ...         pass
    >>> [s.name for s in tracer.spans()]
    ['sensitivity']
    >>> StageTimings.from_spans(tracer.spans()).seconds("sensitivity") == (
    ...     tracer.spans()[0].duration)
    True
    """

    stages: dict[str, StageStat] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str, **attributes):
        """Context manager timing one entry into stage ``name``.

        When a :class:`~repro.obs.Tracer` is ambient, the same interval is
        emitted as a span named ``name`` (with ``attributes``) under the
        context's current span; :func:`repro.obs.set_attributes` may add
        attributes from inside the block.
        """
        tracer = current_tracer()
        start = time.perf_counter()
        span = tracer.begin(name, attributes, start=start) if tracer is not None else None
        try:
            yield self
        finally:
            end = time.perf_counter()
            if span is not None:
                tracer.finish(span, end=end)
            self.add(name, end - start)

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` spent in stage ``name``."""
        self.stages.setdefault(name, StageStat()).add(seconds)

    def add_interval(
        self, name: str, start: float, end: float, **attributes
    ) -> None:
        """Record an already-measured ``perf_counter`` interval.

        Like :meth:`add`, but also logs the interval as a completed span on
        the ambient tracer (under the context's current span) — for call
        sites that only know the stage name *after* the work ran, like the
        incremental engine's warm-vs-cold split.
        """
        tracer = current_tracer()
        if tracer is not None:
            tracer.record(name, start, end, attributes)
        self.add(name, end - start)

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded stage times."""
        return sum(stat.seconds for stat in self.stages.values())

    def seconds(self, name: str) -> float:
        """Seconds recorded for stage ``name`` (0 when never entered)."""
        stat = self.stages.get(name)
        return stat.seconds if stat is not None else 0.0

    def merge(self, other: "StageTimings") -> None:
        """Fold another accumulator's stages into this one."""
        for name, stat in other.stages.items():
            mine = self.stages.setdefault(name, StageStat())
            mine.seconds += stat.seconds
            mine.calls += stat.calls

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """JSON-ready ``{stage: {"seconds": ..., "calls": ...}}`` mapping."""
        return {
            name: {"seconds": stat.seconds, "calls": stat.calls}
            for name, stat in self.stages.items()
        }

    @classmethod
    def from_dict(cls, data: dict[str, dict[str, float | int]]) -> "StageTimings":
        """Inverse of :meth:`as_dict`."""
        timings = cls()
        for name, stat in data.items():
            timings.stages[name] = StageStat(
                seconds=float(stat["seconds"]), calls=int(stat["calls"])
            )
        return timings

    @classmethod
    def from_spans(
        cls, spans: Iterable["Span"], *, stage_names: Iterable[str] | None = None
    ) -> "StageTimings":
        """Derive the per-stage view from a span list (trace round trip).

        Only spans whose name is a known stage name (:data:`STAGE_NAMES`,
        overridable) contribute, so iteration/fit wrapper spans don't double
        count.  Because :meth:`stage` emits spans over the exact window it
        accumulates, this reconstruction matches the original accumulator.
        """
        names = frozenset(STAGE_NAMES if stage_names is None else stage_names)
        timings = cls()
        for span in spans:
            if span.name in names:
                timings.add(span.name, span.duration)
        return timings

    def __len__(self) -> int:
        return len(self.stages)
