"""Lightweight per-stage performance counters for the SGL hot path.

The paper's runtime study (Fig. 11) breaks SGL's near-linear runtime into its
pipeline stages: kNN construction, spanning-tree extraction, spectral
embedding, edge sensitivity ranking and edge scaling.  :class:`StageTimings`
is the instrument the learner (and the benchmark harness in
:mod:`repro.bench`) threads through that pipeline: a tiny accumulator of
wall-clock seconds and call counts per named stage.  The embedding stage is
engine-dependent: the stateless path records ``embedding``, the incremental
engine splits ``embedding`` / ``embedding_warm`` and the multilevel engine
splits ``coarsen`` / ``refine``.

The overhead is two :func:`time.perf_counter` calls per stage entry, so the
learner records timings unconditionally; a fresh ``StageTimings`` is attached
to every :class:`~repro.core.sgl.SGLResult`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["StageStat", "StageTimings"]


@dataclass
class StageStat:
    """Accumulated wall-clock time of one named pipeline stage."""

    seconds: float = 0.0
    calls: int = 0

    def add(self, seconds: float) -> None:
        """Accumulate one timed interval."""
        self.seconds += seconds
        self.calls += 1


@dataclass
class StageTimings:
    """Per-stage wall-clock accumulator threaded through the SGL pipeline.

    Examples
    --------
    >>> timings = StageTimings()
    >>> with timings.stage("embedding"):
    ...     _ = sum(range(1000))
    >>> timings.stages["embedding"].calls
    1
    """

    stages: dict[str, StageStat] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str):
        """Context manager timing one entry into stage ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` spent in stage ``name``."""
        self.stages.setdefault(name, StageStat()).add(seconds)

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded stage times."""
        return sum(stat.seconds for stat in self.stages.values())

    def seconds(self, name: str) -> float:
        """Seconds recorded for stage ``name`` (0 when never entered)."""
        stat = self.stages.get(name)
        return stat.seconds if stat is not None else 0.0

    def merge(self, other: "StageTimings") -> None:
        """Fold another accumulator's stages into this one."""
        for name, stat in other.stages.items():
            mine = self.stages.setdefault(name, StageStat())
            mine.seconds += stat.seconds
            mine.calls += stat.calls

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """JSON-ready ``{stage: {"seconds": ..., "calls": ...}}`` mapping."""
        return {
            name: {"seconds": stat.seconds, "calls": stat.calls}
            for name, stat in self.stages.items()
        }

    @classmethod
    def from_dict(cls, data: dict[str, dict[str, float | int]]) -> "StageTimings":
        """Inverse of :meth:`as_dict`."""
        timings = cls()
        for name, stat in data.items():
            timings.stages[name] = StageStat(
                seconds=float(stat["seconds"]), calls=int(stat["calls"])
            )
        return timings

    def __len__(self) -> int:
        return len(self.stages)
