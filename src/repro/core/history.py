"""Per-iteration convergence records of the SGL densification loop.

The paper reports convergence through the maximum edge sensitivity (Fig. 1)
and the graphical-Lasso objective (Figs. 2, 4-6) as functions of the iteration
count.  :class:`SGLHistory` stores exactly those series plus edge counts, so
the experiment harness can regenerate the figures directly from a learning
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationRecord", "SGLHistory"]


@dataclass(frozen=True)
class IterationRecord:
    """State of the learner after one densification iteration."""

    iteration: int
    max_sensitivity: float
    n_edges: int
    n_edges_added: int
    objective: float | None = None


@dataclass
class SGLHistory:
    """Accumulated per-iteration records of an SGL run."""

    records: list[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        """Add an iteration record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def iterations(self) -> np.ndarray:
        """Iteration indices (0-based)."""
        return np.array([r.iteration for r in self.records], dtype=np.int64)

    @property
    def max_sensitivities(self) -> np.ndarray:
        """Maximum edge sensitivity per iteration (Fig. 1's y-axis)."""
        return np.array([r.max_sensitivity for r in self.records], dtype=np.float64)

    @property
    def log_max_sensitivities(self) -> np.ndarray:
        """``log10`` of the positive part of the maximum sensitivities.

        Non-positive sensitivities (converged iterations) are clipped to the
        smallest positive value seen so the series stays finite, mirroring how
        the paper's Fig. 1 plots ``log smax``.
        """
        sens = self.max_sensitivities
        positive = sens[sens > 0]
        floor = positive.min() if positive.size else 1e-300
        return np.log10(np.maximum(sens, floor))

    @property
    def edge_counts(self) -> np.ndarray:
        """Number of edges in the learned graph after each iteration."""
        return np.array([r.n_edges for r in self.records], dtype=np.int64)

    @property
    def edges_added(self) -> np.ndarray:
        """Number of edges added at each iteration."""
        return np.array([r.n_edges_added for r in self.records], dtype=np.int64)

    @property
    def objectives(self) -> np.ndarray:
        """Objective values per iteration (NaN where not tracked)."""
        return np.array(
            [np.nan if r.objective is None else r.objective for r in self.records],
            dtype=np.float64,
        )
