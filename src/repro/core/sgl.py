"""The SGL graph learner (Algorithm 1 of the paper).

Given voltage measurements ``X`` (and optionally the current excitations
``Y``), the learner:

1. builds a connected kNN graph over the measurement vectors and extracts its
   maximum spanning tree as the initial graph (Step 1);
2. repeatedly embeds the current graph spectrally (Step 2), ranks the
   remaining off-tree kNN edges by sensitivity (Step 3) and adds the top
   ``ceil(N beta)`` edges whose sensitivity exceeds ``tol`` (Step 4);
3. once no influential edges remain, rescales all edge weights so the learned
   graph's voltage response energies match the measured ones (Step 5).

Step 2 is the loop's hot spot.  By default it runs through the warm-started
incremental :class:`~repro.embedding.EmbeddingEngine`, which reuses the
previous iteration's eigenvectors instead of re-solving the eigenproblem from
scratch.  ``SGLConfig.embedding_engine = "multilevel"`` switches to the
coarsen-solve-refine :class:`~repro.embedding.MultilevelEmbeddingEngine`
(the paper's near-linear-time path, fastest at paper scale), and
``"stateless"`` restores the old recompute-every-iteration behaviour.

The result is an ultra-sparse resistor network (density slightly above one)
whose spectral-embedding / effective-resistance distances encode the measured
voltage distances.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import SGLConfig
from repro.core.history import IterationRecord, SGLHistory
from repro.core.instrumentation import StageTimings
from repro.obs.tracing import set_attributes, span as obs_span
from repro.core.objective import graphical_lasso_objective
from repro.core.scaling import spectral_edge_scaling
from repro.core.sensitivity import edge_sensitivities
from repro.embedding.engine import EmbeddingEngine
from repro.embedding.multilevel_engine import MultilevelEmbeddingEngine
from repro.embedding.spectral import spectral_embedding_matrix
from repro.graphs.graph import WeightedGraph
from repro.knn.knn_graph import knn_graph
from repro.knn.mst import maximum_spanning_tree
from repro.measurements.generator import MeasurementSet

__all__ = ["SGLearner", "SGLResult", "learn_graph"]


@dataclass(frozen=True)
class SGLResult:
    """Outcome of an SGL learning run.

    Attributes
    ----------
    graph:
        The learned resistor network after edge scaling (Step 5).
    unscaled_graph:
        The learned graph before Step 5 (identical topology and relative
        weights; only the global conductance scale differs).
    initial_graph:
        The spanning tree (or other initial graph) the densification started
        from.
    knn_graph:
        The kNN graph providing the candidate edge pool.
    history:
        Per-iteration convergence records (max sensitivity, edge counts,
        optionally the objective).
    converged:
        True when the loop stopped because the maximum sensitivity dropped
        below ``tol`` (as opposed to exhausting candidates or iterations).
    scaling_factor:
        The global conductance factor applied by Step 5 (1.0 when currents
        were not available or scaling was disabled).
    config:
        The configuration used.
    timings:
        Per-stage wall-clock counters recorded during :meth:`SGLearner.fit`
        (stages ``knn``, ``initial_tree``, ``candidate_pool``, ``embedding``,
        ``embedding_warm``, ``coarsen``, ``refine``, ``sensitivity``,
        ``objective``, ``edge_selection``, ``edge_scaling``).  ``embedding``
        counts cold / fallback eigensolves and ``embedding_warm``
        warm-started refreshes (incremental engine); ``coarsen`` /
        ``refine`` split the multilevel engine's hierarchy maintenance and
        coarse-solve-prolongate-refine phases.
    engine_stats:
        Refresh-outcome counters of the stateful embedding engine
        (:meth:`repro.embedding.EngineStats.as_dict` or
        :meth:`repro.embedding.MultilevelEngineStats.as_dict`), or ``None``
        when the stateless path was used.

    Examples
    --------
    >>> from repro import learn_graph, simulate_measurements
    >>> from repro.graphs.generators import grid_2d
    >>> data = simulate_measurements(grid_2d(8, 8), n_measurements=30, seed=0)
    >>> result = learn_graph(data, beta=0.05)
    >>> result.n_iterations >= 1 and 1.0 <= result.density <= 2.0
    True
    >>> sorted(result.engine_stats)[:2]
    ['cold_solves', 'factorizations']
    """

    graph: WeightedGraph
    unscaled_graph: WeightedGraph
    initial_graph: WeightedGraph
    knn_graph: WeightedGraph
    history: SGLHistory
    converged: bool
    scaling_factor: float
    config: SGLConfig
    timings: StageTimings = field(default_factory=StageTimings)
    engine_stats: dict | None = None

    @property
    def n_iterations(self) -> int:
        """Number of densification iterations executed."""
        return len(self.history)

    @property
    def density(self) -> float:
        """Density ``|E|/|V|`` of the learned graph."""
        return self.graph.density


class SGLearner:
    """Spectral graph learner implementing Algorithm 1.

    Parameters
    ----------
    config:
        A :class:`~repro.core.SGLConfig`; keyword overrides may be passed
        instead (``SGLearner(k=5, r=5, beta=0.01)``).

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.measurements import simulate_measurements
    >>> graph = grid_2d(10, 10)
    >>> measurements = simulate_measurements(graph, n_measurements=30, seed=0)
    >>> result = SGLearner(beta=0.05, max_iterations=50).fit(measurements)
    >>> result.graph.n_nodes
    100
    """

    def __init__(self, config: SGLConfig | None = None, **overrides) -> None:
        if config is None:
            config = SGLConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config

    # ------------------------------------------------------------------
    def _initial_graphs(
        self, voltages: np.ndarray, timings: StageTimings
    ) -> tuple[WeightedGraph, WeightedGraph]:
        """Build the candidate kNN graph and the initial graph (Step 1)."""
        config = self.config
        n_nodes = voltages.shape[0]
        k = min(config.k, n_nodes - 1)
        with timings.stage("knn"):
            candidates = knn_graph(
                voltages,
                k,
                weight_scheme="sgl",
                ensure_connected=True,
                backend=config.knn_backend,
                backend_options={"seed": config.seed},
            )
        if config.initial_graph == "knn":
            return candidates, candidates.copy()
        if config.initial_graph == "mst":
            with timings.stage("initial_tree"):
                return candidates, maximum_spanning_tree(candidates)
        # "random-tree": a spanning tree chosen with random edge priorities.
        rng = np.random.default_rng(config.seed)
        random_priorities = candidates.with_weights(rng.random(candidates.n_edges) + 0.5)
        tree_topology = maximum_spanning_tree(random_priorities)
        # Restore the SGL weights on the chosen tree edges (one vectorised
        # binary-search lookup instead of an O(V*E) per-edge scan).
        tree = WeightedGraph(
            candidates.n_nodes,
            tree_topology.rows,
            tree_topology.cols,
            candidates.edge_weights(tree_topology.edges),
        )
        return candidates, tree

    # ------------------------------------------------------------------
    def fit(
        self,
        measurements: MeasurementSet | np.ndarray,
        currents: np.ndarray | None = None,
        *,
        timings: StageTimings | None = None,
        checkpoint_path: str | Path | None = None,
    ) -> SGLResult:
        """Learn a resistor network from measurements.

        Parameters
        ----------
        measurements:
            A :class:`~repro.measurements.MeasurementSet`, or a bare voltage
            matrix ``X`` of shape ``(N, M)``.
        currents:
            Optional current matrix ``Y`` when ``measurements`` is a bare
            array; ignored otherwise.
        timings:
            Optional :class:`~repro.core.instrumentation.StageTimings` to
            accumulate stage timings into (e.g. across benchmark repeats); a
            fresh one is created otherwise.  Either way it is attached to the
            result as ``result.timings``.
        checkpoint_path:
            When given, the finished result is persisted as a model artifact
            (:func:`repro.artifacts.save_result`, embedding included) at
            this path, ready for :mod:`repro.serve`.  The ``checkpoint``
            stage in the timings records what the save cost.

        Returns
        -------
        SGLResult
        """
        if isinstance(measurements, MeasurementSet):
            voltages = measurements.voltages
            currents = measurements.currents
        else:
            voltages = np.asarray(measurements, dtype=np.float64)
        if voltages.ndim != 2:
            raise ValueError("voltages must be an (N, M) matrix")
        n_nodes, n_measurements = voltages.shape
        if n_nodes < 3:
            raise ValueError("need at least three nodes to learn a graph")
        config = self.config
        if timings is None:
            timings = StageTimings()

        # The whole fit runs under one root span (a no-op without an active
        # repro.obs tracer); every stage entry below nests under it, and
        # each densification iteration gets its own child span, so a traced
        # run yields fit -> iteration -> stage trees whose per-stage totals
        # are exactly the StageTimings sums.
        with obs_span(
            "sgl.fit",
            n_nodes=n_nodes,
            n_measurements=n_measurements,
            embedding_engine=config.embedding_engine,
            knn_backend=config.knn_backend,
        ):
            result = self._fit_body(voltages, currents, timings, checkpoint_path)
            set_attributes(
                converged=result.converged,
                n_iterations=result.n_iterations,
                n_edges_learned=result.graph.n_edges,
            )
        return result

    def _fit_body(
        self,
        voltages: np.ndarray,
        currents: np.ndarray | None,
        timings: StageTimings,
        checkpoint_path: str | Path | None,
    ) -> SGLResult:
        """The body of :meth:`fit`, run under the ``sgl.fit`` root span."""
        config = self.config
        n_nodes = voltages.shape[0]

        candidates, graph = self._initial_graphs(voltages, timings)
        initial_graph = graph.copy()

        # Candidate pool: off-tree edges of the kNN graph, with the paper's
        # M / ||x_s - x_t||^2 weights precomputed once.
        with timings.stage("candidate_pool"):
            pool_mask = ~graph.has_edges(candidates.edges)
            pool_edges = candidates.edges[pool_mask]
            pool_weights = candidates.weights[pool_mask].copy()

        history = SGLHistory()
        converged = False
        batch_size = config.edges_per_iteration(n_nodes)

        engine: EmbeddingEngine | MultilevelEmbeddingEngine | None = None
        if config.embedding_engine == "incremental":
            engine = EmbeddingEngine(
                config.r,
                sigma_sq=config.sigma_sq,
                method=config.eigensolver,
                seed=config.seed,
                multilevel_coarse_size=config.multilevel_coarse_size,
            )
        elif config.embedding_engine == "multilevel":
            engine = MultilevelEmbeddingEngine(
                config.r,
                sigma_sq=config.sigma_sq,
                coarse_size=config.multilevel_coarse_size,
                churn_threshold=config.multilevel_churn_threshold,
                refinement=config.refinement_backend,
                refine_dtype=config.refine_dtype,
                linalg_backend=config.linalg_backend,
                seed=config.seed,
            )
        added_edges: np.ndarray | None = None

        for iteration in range(config.max_iterations):
            if pool_edges.shape[0] == 0:
                converged = True
                break
            with obs_span(
                "iteration",
                iteration=iteration,
                n_edges=graph.n_edges,
                n_candidates=int(pool_edges.shape[0]),
            ):
                if isinstance(engine, MultilevelEmbeddingEngine):
                    # The engine times its own phases into "coarsen" /
                    # "refine" (and tags the spans with its V-cycle state).
                    embedding = engine.refresh(graph, added_edges, timings=timings)
                elif engine is not None:
                    # Warm refreshes land in "embedding_warm"; cold solves
                    # and fallbacks stay in "embedding" so the stages stay
                    # comparable with the stateless path.  The stage name is
                    # only known after the refresh, hence add_interval.
                    start = time.perf_counter()
                    embedding = engine.refresh(graph, added_edges)
                    end = time.perf_counter()
                    stage = (
                        "embedding_warm"
                        if engine.last_mode in ("warm-rr", "warm-inverse")
                        else "embedding"
                    )
                    timings.add_interval(
                        stage,
                        start,
                        end,
                        mode=engine.last_mode,
                        fallbacks=engine.stats.fallbacks,
                        factorizations=engine.stats.factorizations,
                    )
                else:
                    with timings.stage("embedding", method=config.eigensolver):
                        embedding = spectral_embedding_matrix(
                            graph,
                            config.r,
                            sigma_sq=config.sigma_sq,
                            method=config.eigensolver,
                            seed=config.seed,
                            multilevel_coarse_size=config.multilevel_coarse_size,
                        )
                with timings.stage("sensitivity"):
                    sensitivities = edge_sensitivities(
                        embedding,
                        voltages,
                        pool_edges,
                        n_samples=config.sensitivity_samples,
                        seed=config.seed,
                    )
                max_sensitivity = float(sensitivities.max())

                objective = None
                if config.track_objective:
                    with timings.stage("objective"):
                        objective = graphical_lasso_objective(
                            graph,
                            voltages,
                            sigma_sq=config.sigma_sq,
                            n_eigenvalues=config.objective_eigenvalues,
                            seed=config.seed,
                        )

                if max_sensitivity < config.tol:
                    history.append(
                        IterationRecord(
                            iteration=iteration,
                            max_sensitivity=max_sensitivity,
                            n_edges=graph.n_edges,
                            n_edges_added=0,
                            objective=objective,
                        )
                    )
                    converged = True
                    set_attributes(max_sensitivity=max_sensitivity, n_edges_added=0)
                    break

                # Step 3: add the top-ranked influential edges.
                with timings.stage("edge_selection"):
                    order = np.argsort(sensitivities)[::-1][:batch_size]
                    chosen = order[sensitivities[order] > config.tol]
                    add_edges = pool_edges[chosen]
                    add_weights = pool_weights[chosen]
                    graph = graph.add_edges(add_edges, add_weights)
                    added_edges = add_edges

                    keep = np.ones(pool_edges.shape[0], dtype=bool)
                    keep[chosen] = False
                    pool_edges = pool_edges[keep]
                    pool_weights = pool_weights[keep]

                history.append(
                    IterationRecord(
                        iteration=iteration,
                        max_sensitivity=max_sensitivity,
                        n_edges=graph.n_edges,
                        n_edges_added=int(chosen.size),
                        objective=objective,
                    )
                )
                set_attributes(
                    max_sensitivity=max_sensitivity,
                    n_edges_added=int(chosen.size),
                )
                if chosen.size == 0:
                    converged = True
                    break

        unscaled = graph
        scaling_factor = 1.0
        if config.edge_scaling and currents is not None:
            with timings.stage("edge_scaling"):
                graph, scaling_factor = spectral_edge_scaling(graph, voltages, currents)

        result = SGLResult(
            graph=graph,
            unscaled_graph=unscaled,
            initial_graph=initial_graph,
            knn_graph=candidates,
            history=history,
            converged=converged,
            scaling_factor=scaling_factor,
            config=config,
            timings=timings,
            engine_stats=engine.stats.as_dict() if engine is not None else None,
        )
        if checkpoint_path is not None:
            # Local import: repro.artifacts depends on this module's types.
            from repro.artifacts.store import save_result

            with timings.stage("checkpoint"):
                save_result(result, checkpoint_path)
        return result


def learn_graph(
    measurements: MeasurementSet | np.ndarray,
    currents: np.ndarray | None = None,
    *,
    config: SGLConfig | None = None,
    **overrides,
) -> SGLResult:
    """Convenience wrapper: ``SGLearner(config or overrides).fit(measurements)``.

    Examples
    --------
    >>> from repro import learn_graph, simulate_measurements
    >>> from repro.graphs.generators import grid_2d
    >>> data = simulate_measurements(grid_2d(8, 8), n_measurements=30, seed=0)
    >>> result = learn_graph(data, beta=0.05)
    >>> result.graph.is_connected() and result.graph.n_nodes == 64
    True
    """
    learner = SGLearner(config=config, **overrides) if config is not None or overrides else SGLearner()
    return learner.fit(measurements, currents)
