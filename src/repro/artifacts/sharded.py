"""Sharded model artifacts: per-shard ``.npz`` files under a checksummed manifest.

A partition-parallel fit (:class:`~repro.partition.ShardedSGLearner`)
produces a model too large to want in one file and naturally split along its
partition.  :func:`save_sharded_result` writes one directory:

``manifest.json``
    Schema/version header, the global :class:`~repro.core.SGLConfig`, the
    partition summary, stitch statistics and — crucially — the SHA-256
    payload checksum of every member file.  The manifest is written *last*,
    so an interrupted save never leaves a loadable half-model behind.
``shard_0000.npz`` … ``shard_NNNN.npz``
    One ordinary model artifact (:func:`repro.artifacts.save_artifact`
    schema) per shard: the shard's interior edges in shard-local node ids,
    plus a per-shard spectral embedding for serving-side kNN.
``boundary.npz``
    The partition assignment vector and the admitted cross-shard edges of
    the stitched graph (global node ids, final scaled weights).

:func:`load_sharded_result` re-validates everything — manifest schema, the
boundary payload checksum, each shard through the full
:func:`~repro.artifacts.load_result` validation stack *and* against the
manifest's recorded checksum, so both corruption and file swaps surface as
:class:`ShardManifestError` naming the offending member.

Examples
--------
>>> import tempfile
>>> from repro.artifacts import load_sharded_result, save_sharded_result
>>> from repro.graphs.generators import grid_2d
>>> from repro.measurements import simulate_measurements
>>> from repro.partition import ShardedSGLearner
>>> data = simulate_measurements(grid_2d(10, 10), n_measurements=30, seed=0)
>>> result = ShardedSGLearner(beta=0.05, num_parts=2).fit(data)
>>> directory = save_sharded_result(result, tempfile.mkdtemp())
>>> loaded = load_sharded_result(directory)
>>> loaded.n_parts, loaded.n_nodes
(2, 100)
>>> loaded.global_graph() == result.graph
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.artifacts.store import (
    ArtifactFormatError,
    ModelArtifact,
    _config_from_meta,
    _config_to_meta,
    _environment_meta,
    load_result,
    payload_checksum,
    save_artifact,
)
from repro.core.config import SGLConfig
from repro.graphs.graph import WeightedGraph

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "MANIFEST_VERSION",
    "ShardManifestError",
    "ShardedModelArtifact",
    "load_sharded_result",
    "save_sharded_result",
]

MANIFEST_SCHEMA = "repro.sharded-model"
MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
BOUNDARY_NAME = "boundary.npz"

_BOUNDARY_DTYPES = {
    "assignment": np.dtype(np.int64),
    "cut_rows": np.dtype(np.int64),
    "cut_cols": np.dtype(np.int64),
    "cut_weights": np.dtype(np.float64),
}


class ShardManifestError(ArtifactFormatError):
    """A sharded model directory is corrupt, tampered with or incomplete."""


@dataclass(frozen=True)
class ShardedModelArtifact:
    """A sharded model loaded back from disk (see :func:`load_sharded_result`).

    Attributes
    ----------
    directory:
        The model directory.
    manifest:
        The decoded, validated manifest blob.
    shards:
        Per-shard :class:`~repro.artifacts.ModelArtifact` objects
        (shard-local node ids).
    shard_nodes:
        Per-shard ascending global node ids (``shard_nodes[p][local]``).
    assignment:
        Length-``n_nodes`` node-to-shard map.
    cut_rows, cut_cols, cut_weights:
        The stitched graph's cross-shard edges, global ids, final weights.
    """

    directory: Path
    manifest: dict
    shards: tuple[ModelArtifact, ...]
    shard_nodes: tuple[np.ndarray, ...]
    assignment: np.ndarray
    cut_rows: np.ndarray
    cut_cols: np.ndarray
    cut_weights: np.ndarray
    config: SGLConfig = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def n_nodes(self) -> int:
        """Total number of nodes across all shards."""
        return int(self.manifest["n_nodes"])

    @property
    def n_parts(self) -> int:
        """Number of shards."""
        return int(self.manifest["n_parts"])

    @property
    def checksum(self) -> str:
        """Identity of the whole sharded model (hash of member checksums)."""
        digest = hashlib.sha256()
        for entry in self.manifest["shards"]:
            digest.update(entry["checksum"].encode("ascii"))
        digest.update(self.manifest["boundary"]["checksum"].encode("ascii"))
        return digest.hexdigest()

    def global_graph(self) -> WeightedGraph:
        """Reassemble the full stitched graph in global node ids.

        Exact: shard interiors are vertex-disjoint and the cut edges are
        stored verbatim, so this reproduces the saved graph bit for bit.
        """
        rows = [self.cut_rows]
        cols = [self.cut_cols]
        weights = [self.cut_weights]
        for nodes, shard in zip(self.shard_nodes, self.shards):
            rows.append(nodes[shard.graph.rows])
            cols.append(nodes[shard.graph.cols])
            weights.append(shard.graph.weights)
        return WeightedGraph(
            self.n_nodes,
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(weights),
        )


def _shard_filename(part: int) -> str:
    return f"shard_{part:04d}.npz"


def save_sharded_result(
    result,
    directory: str | Path,
    *,
    include_embeddings: bool = True,
) -> Path:
    """Persist a :class:`~repro.partition.ShardedSGLResult` as a model directory.

    The final (stitched, scaled) graph is decomposed along the partition:
    each shard artifact stores its interior edges in local ids, the boundary
    file stores the cross-shard edges and the assignment vector.  With
    ``include_embeddings`` (default) each shard also gets a spectral
    embedding of its interior graph, so sharded serving can answer
    nearest-neighbour queries without an eigensolver at load time.

    The manifest is written only after every member file is on disk — a
    failed or interrupted save leaves no ``manifest.json``, so it can never
    be mistaken for a complete model.
    """
    from repro.embedding.spectral import spectral_embedding_matrix

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    config = result.config
    graph = result.graph
    assignment = result.partition.assignment
    cross = assignment[graph.rows] != assignment[graph.cols]
    method = (
        "multilevel"
        if config.embedding_engine == "multilevel"
        else config.eigensolver
    )

    shard_entries = []
    for part, nodes in enumerate(result.shard_nodes):
        interior = ~cross & (assignment[graph.rows] == part)
        local_rows = np.searchsorted(nodes, graph.rows[interior])
        local_cols = np.searchsorted(nodes, graph.cols[interior])
        shard_graph = WeightedGraph(
            nodes.size, local_rows, local_cols, graph.weights[interior]
        )
        embedding = None
        if include_embeddings:
            embedding = spectral_embedding_matrix(
                shard_graph,
                config.r,
                sigma_sq=config.sigma_sq,
                method=method,
                seed=config.seed,
                multilevel_coarse_size=config.multilevel_coarse_size,
            ).coordinates
        shard_result = result.shard_results[part]
        path = save_artifact(
            shard_graph,
            config,
            directory / _shard_filename(part),
            embedding=embedding,
            engine_stats=shard_result.engine_stats,
            timings=shard_result.timings,
            source="ShardedSGLearner.fit",
        )
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta_json"].tobytes()).decode("utf-8"))
        shard_entries.append(
            {
                "file": path.name,
                "checksum": meta["checksum"],
                "n_nodes": int(nodes.size),
                "n_edges": shard_graph.n_edges,
            }
        )

    boundary_arrays = {
        "assignment": np.ascontiguousarray(assignment, dtype=np.int64),
        "cut_rows": np.ascontiguousarray(graph.rows[cross], dtype=np.int64),
        "cut_cols": np.ascontiguousarray(graph.cols[cross], dtype=np.int64),
        "cut_weights": np.ascontiguousarray(graph.weights[cross], dtype=np.float64),
    }
    with (directory / BOUNDARY_NAME).open("wb") as handle:
        np.savez_compressed(handle, **boundary_arrays)

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "schema_version": MANIFEST_VERSION,
        "n_nodes": graph.n_nodes,
        "n_parts": result.partition.n_parts,
        "n_edges": graph.n_edges,
        "scaling_factor": float(result.scaling_factor),
        "converged": bool(result.converged),
        "stitch_stats": result.stitch_stats,
        "partition": result.partition.as_dict(),
        "config": _config_to_meta(config),
        "shards": shard_entries,
        "boundary": {
            "file": BOUNDARY_NAME,
            "checksum": payload_checksum(boundary_arrays),
        },
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": _environment_meta(),
        "source": "ShardedSGLearner.fit",
    }
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, sort_keys=True, indent=1), encoding="utf-8"
    )
    return directory


def load_sharded_result(directory: str | Path) -> ShardedModelArtifact:
    """Load and validate a sharded model directory.

    Validation layers, in order: manifest presence + JSON + schema
    name/version, boundary array presence/dtype + payload-checksum
    recompute, assignment consistency, then every shard through
    :func:`~repro.artifacts.load_result`'s full validation stack *and*
    against the manifest's recorded checksum (so swapping in a different —
    even internally valid — shard artifact is caught).  Every failure
    raises :class:`ShardManifestError` naming the offending member.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ShardManifestError(
            f"{directory} has no {MANIFEST_NAME} (not a sharded model, or an "
            "interrupted save)"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ShardManifestError(f"unreadable manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ShardManifestError("manifest must be a JSON object")
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ShardManifestError(
            f"unexpected schema {manifest.get('schema')!r} "
            f"(expected {MANIFEST_SCHEMA!r})"
        )
    if manifest.get("schema_version") != MANIFEST_VERSION:
        raise ShardManifestError(
            f"unsupported schema version {manifest.get('schema_version')!r}"
        )
    for key in ("n_nodes", "n_parts", "shards", "boundary", "config"):
        if key not in manifest:
            raise ShardManifestError(f"manifest is missing {key!r}")
    n_nodes = int(manifest["n_nodes"])
    n_parts = int(manifest["n_parts"])
    if len(manifest["shards"]) != n_parts:
        raise ShardManifestError(
            f"manifest lists {len(manifest['shards'])} shards for "
            f"n_parts={n_parts}"
        )

    boundary_entry = manifest["boundary"]
    boundary_path = directory / boundary_entry["file"]
    try:
        with np.load(boundary_path) as data:
            boundary = {name: data[name] for name in _BOUNDARY_DTYPES if name in data}
            missing = sorted(set(_BOUNDARY_DTYPES) - set(boundary))
    except (OSError, ValueError) as exc:
        raise ShardManifestError(f"unreadable boundary file: {exc}") from exc
    if missing:
        raise ShardManifestError(f"boundary file is missing arrays: {missing}")
    for name, dtype in _BOUNDARY_DTYPES.items():
        if boundary[name].dtype != dtype:
            raise ShardManifestError(
                f"boundary array {name!r} has dtype {boundary[name].dtype}, "
                f"expected {dtype}"
            )
    if payload_checksum(boundary) != boundary_entry.get("checksum"):
        raise ShardManifestError(
            "boundary payload checksum mismatch (file corrupt or tampered)"
        )
    assignment = boundary["assignment"]
    if assignment.shape != (n_nodes,):
        raise ShardManifestError(
            f"assignment has shape {assignment.shape}, expected ({n_nodes},)"
        )
    if assignment.size and (assignment.min() < 0 or assignment.max() >= n_parts):
        raise ShardManifestError("assignment references out-of-range shards")

    shards = []
    shard_nodes = []
    for part, entry in enumerate(manifest["shards"]):
        path = directory / entry["file"]
        try:
            artifact = load_result(path)
        except ArtifactFormatError as exc:
            raise ShardManifestError(f"shard {part} ({entry['file']}): {exc}") from exc
        if artifact.checksum != entry.get("checksum"):
            raise ShardManifestError(
                f"shard {part} ({entry['file']}): checksum does not match the "
                "manifest (file replaced or tampered)"
            )
        nodes = np.where(assignment == part)[0]
        if artifact.graph.n_nodes != nodes.size:
            raise ShardManifestError(
                f"shard {part} has {artifact.graph.n_nodes} nodes but the "
                f"assignment gives it {nodes.size}"
            )
        shards.append(artifact)
        shard_nodes.append(nodes)

    return ShardedModelArtifact(
        directory=directory,
        manifest=manifest,
        shards=tuple(shards),
        shard_nodes=tuple(shard_nodes),
        assignment=assignment,
        cut_rows=boundary["cut_rows"],
        cut_cols=boundary["cut_cols"],
        cut_weights=boundary["cut_weights"],
        config=_config_from_meta(manifest["config"]),
    )
