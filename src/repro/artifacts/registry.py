"""Named, versioned model registry over checksummed artifacts.

Model artifacts (:mod:`repro.artifacts.store`) are content-addressed by
their payload checksum, but every consumer so far has carried ad-hoc file
paths around.  :class:`ModelRegistry` gives the repo one shared, local model
store with the semantics a serving fleet needs:

* **publish** a learned :class:`~repro.core.sgl.SGLResult` (or an existing
  artifact file) under a *name*; each publish mints the next integer
  version and records lineage back to the parent version it superseded;
* **resolve** a model *reference* — ``"name@3"``, ``"name@latest"`` or
  ``"name@<tag>"`` — to the concrete artifact path that
  :func:`~repro.artifacts.load_result` and :class:`repro.serve.GraphService`
  consume (``repro-serve --registry`` and the ``serve --follow`` hot-swap
  loop resolve through exactly this);
* **tag** versions with mutable labels (``prod``, ``canary``) and **gc**
  superseded versions while keeping tagged and recent ones.

Layout on disk::

    <root>/index.json                 queryable JSON index (atomic writes)
    <root>/models/<name>/v0001.npz    immutable artifact payloads

The index is the single source of truth and is rewritten atomically
(temp file + ``os.replace``) on every mutation, so a crash mid-publish
leaves either the old or the new index, never a torn one; the artifact
file lands (also via ``os.replace``) *before* the index references it.
The registry is a single-writer store: concurrent readers are always
safe, concurrent writers from separate processes are not coordinated.

Examples
--------
>>> import tempfile
>>> from repro import learn_graph, simulate_measurements
>>> from repro.artifacts import ModelRegistry, load_result
>>> from repro.graphs.generators import grid_2d
>>> data = simulate_measurements(grid_2d(6, 6), n_measurements=30, seed=0)
>>> registry = ModelRegistry(tempfile.mkdtemp())
>>> v1 = registry.publish(learn_graph(data, beta=0.05), "grid")
>>> v2 = registry.publish(learn_graph(data, beta=0.1), "grid", parent=v1)
>>> (v1.version, v2.version, v2.parent)
(1, 2, 1)
>>> registry.get("grid@latest").version
2
>>> load_result(registry.resolve("grid@1")).n_nodes
36
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.artifacts.store import (
    ArtifactFormatError,
    artifact_checksum,
    save_result,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sgl import SGLResult

__all__ = [
    "ModelRegistry",
    "ModelVersion",
    "RegistryError",
    "is_model_ref",
    "parse_model_ref",
]

REGISTRY_SCHEMA = "repro.registry"
REGISTRY_VERSION = 1

#: Model names: a leading alphanumeric, then word chars / dots / dashes.
_NAME_RE = re.compile(r"^[A-Za-z0-9][\w.-]*$")
#: ``name@selector`` references; the selector grammar is checked in resolve.
_REF_RE = re.compile(r"^(?P<name>[A-Za-z0-9][\w.-]*)@(?P<selector>[\w.-]+)$")


class RegistryError(ValueError):
    """A registry operation failed: unknown model, bad reference, torn index."""


def is_model_ref(ref: object) -> bool:
    """Whether ``ref`` looks like a ``name@selector`` registry reference.

    Used by the serving layer to distinguish registry references from
    filesystem paths (paths contain separators or extensions that the
    reference grammar rejects).

    >>> is_model_ref("grid@latest"), is_model_ref("models/grid.npz")
    (True, False)
    """
    return isinstance(ref, str) and _REF_RE.match(ref) is not None


def parse_model_ref(ref: str) -> tuple[str, str]:
    """Split ``"name@selector"`` into its parts (``"name"`` → ``latest``).

    >>> parse_model_ref("grid@3")
    ('grid', '3')
    >>> parse_model_ref("grid")
    ('grid', 'latest')
    """
    if "@" not in ref:
        if not _NAME_RE.match(ref):
            raise RegistryError(f"invalid model reference {ref!r}")
        return ref, "latest"
    match = _REF_RE.match(ref)
    if match is None:
        raise RegistryError(
            f"invalid model reference {ref!r} (expected name@version, "
            "name@latest or name@tag)"
        )
    return match.group("name"), match.group("selector")


@dataclass(frozen=True)
class ModelVersion:
    """One immutable published version of a named model.

    Attributes
    ----------
    name, version:
        The registry coordinates; ``version`` is a monotonically increasing
        integer minted at publish time.
    path:
        Absolute path of the artifact file (load it with
        :func:`~repro.artifacts.load_result`).
    checksum:
        The artifact's payload checksum — its content identity; the serving
        layer keys sessions on it.
    parent:
        Version number this one superseded (lineage), or ``None`` for a
        root version (a fresh fit).
    created_at:
        UTC ISO timestamp of the publish.
    n_nodes, n_edges:
        Graph size, denormalised into the index for cheap queries.
    tags:
        Labels currently pointing at this version (mutable registry state,
        snapshotted at lookup time).
    metadata:
        Free-form JSON metadata recorded at publish (the stream loop stores
        the update mode and drift scores here).
    """

    name: str
    version: int
    path: Path
    checksum: str
    parent: int | None = None
    created_at: str = ""
    n_nodes: int = 0
    n_edges: int = 0
    tags: tuple[str, ...] = ()
    metadata: dict = field(default_factory=dict)

    @property
    def ref(self) -> str:
        """The canonical ``name@version`` reference of this version."""
        return f"{self.name}@{self.version}"


class ModelRegistry:
    """Local named-and-versioned store of model artifacts (see module docs).

    Parameters
    ----------
    root:
        Registry directory; created (with parents) if missing.  An existing
        ``index.json`` is loaded and validated.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._index_path = self.root / "index.json"
        self._lock = threading.Lock()
        self._index = self._load_index()

    # ------------------------------------------------------------------
    # Index persistence
    # ------------------------------------------------------------------
    def _load_index(self) -> dict:
        if not self._index_path.exists():
            return {
                "schema": REGISTRY_SCHEMA,
                "schema_version": REGISTRY_VERSION,
                "models": {},
            }
        try:
            index = json.loads(self._index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"{self._index_path}: unreadable index ({exc})") from exc
        if not isinstance(index, dict) or index.get("schema") != REGISTRY_SCHEMA:
            raise RegistryError(
                f"{self._index_path}: not a {REGISTRY_SCHEMA} index"
            )
        if index.get("schema_version") != REGISTRY_VERSION:
            raise RegistryError(
                f"unsupported registry schema_version "
                f"{index.get('schema_version')!r} (this reader supports "
                f"{REGISTRY_VERSION})"
            )
        index.setdefault("models", {})
        return index

    def _write_index(self) -> None:
        # Atomic replace: a crash leaves either the old or the new index.
        tmp = self._index_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(self._index, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self._index_path)

    def reload(self) -> None:
        """Re-read the index from disk (pick up another process's publishes)."""
        with self._lock:
            self._index = self._load_index()

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------
    def publish(
        self,
        source: "SGLResult | str | Path",
        name: str,
        *,
        parent: "ModelVersion | int | None" = None,
        tags: tuple[str, ...] | list[str] = (),
        metadata: dict | None = None,
        embedding: np.ndarray | None = None,
        compress: bool = True,
    ) -> ModelVersion:
        """Publish a model under ``name``; mints and returns the next version.

        ``source`` is either a learned :class:`~repro.core.sgl.SGLResult`
        (persisted via :func:`~repro.artifacts.save_result`, optionally with
        an explicit precomputed ``embedding``) or the path of an existing
        artifact file (copied in after a checksum read validates it).  The
        artifact lands in the registry *before* the index references it, so
        readers never see a dangling entry.  ``parent`` records lineage;
        ``compress=False`` stores raw (``np.savez``) payloads that
        :func:`~repro.artifacts.load_result` can memory-map on the serve
        path.
        """
        if not _NAME_RE.match(name):
            raise RegistryError(
                f"invalid model name {name!r} (must match {_NAME_RE.pattern})"
            )
        if isinstance(parent, ModelVersion):
            if parent.name != name:
                raise RegistryError(
                    f"parent {parent.ref!r} belongs to a different model than {name!r}"
                )
            parent = parent.version
        metadata = dict(metadata or {})
        model_dir = self.root / "models" / name
        model_dir.mkdir(parents=True, exist_ok=True)

        with self._lock:
            entry = self._index["models"].setdefault(
                name, {"latest": 0, "tags": {}, "versions": []}
            )
            if parent is not None and not any(
                v["version"] == parent for v in entry["versions"]
            ):
                raise RegistryError(f"parent version {name}@{parent} does not exist")
            version = int(entry["latest"]) + 1
            rel_path = f"models/{name}/v{version:04d}.npz"
            final = self.root / rel_path
            tmp = final.with_suffix(".npz.tmp")
            try:
                if isinstance(source, (str, Path)):
                    checksum = artifact_checksum(source)  # validates the meta blob
                    shutil.copyfile(source, tmp)
                    with np.load(tmp, allow_pickle=False) as data:
                        n_nodes_arr = data["graph_rows"]
                        n_edges = int(n_nodes_arr.shape[0])
                        n_nodes = int(
                            json.loads(bytes(data["meta_json"].tobytes()))["n_nodes"]
                        )
                else:
                    save_result(source, tmp, embedding=embedding, compress=compress)
                    checksum = artifact_checksum(tmp)
                    n_nodes = source.graph.n_nodes
                    n_edges = source.graph.n_edges
                os.replace(tmp, final)
            finally:
                tmp.unlink(missing_ok=True)

            record = {
                "version": version,
                "path": rel_path,
                "checksum": checksum,
                "parent": parent,
                "created_at": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                "n_nodes": n_nodes,
                "n_edges": n_edges,
                "metadata": metadata,
            }
            entry["versions"].append(record)
            entry["latest"] = version
            for tag in tags:
                self._check_tag(tag)
                entry["tags"][tag] = version
            self._write_index()
        return self._to_version(name, record)

    @staticmethod
    def _check_tag(tag: str) -> None:
        if not _NAME_RE.match(tag) or tag.isdigit() or tag == "latest":
            raise RegistryError(
                f"invalid tag {tag!r} (reserved or not a valid label)"
            )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _entry(self, name: str) -> dict:
        try:
            return self._index["models"][name]
        except KeyError:
            raise RegistryError(
                f"unknown model {name!r}; available: {sorted(self._index['models'])}"
            ) from None

    def _to_version(self, name: str, record: dict) -> ModelVersion:
        entry = self._index["models"][name]
        tags = tuple(
            sorted(t for t, v in entry["tags"].items() if v == record["version"])
        )
        return ModelVersion(
            name=name,
            version=int(record["version"]),
            path=self.root / record["path"],
            checksum=record["checksum"],
            parent=record["parent"],
            created_at=record.get("created_at", ""),
            n_nodes=int(record.get("n_nodes", 0)),
            n_edges=int(record.get("n_edges", 0)),
            tags=tags,
            metadata=dict(record.get("metadata", {})),
        )

    def get(self, ref: str) -> ModelVersion:
        """Resolve ``name@selector`` (or bare ``name``) to a version record."""
        name, selector = parse_model_ref(ref)
        with self._lock:
            entry = self._entry(name)
            if selector == "latest":
                if not entry["versions"]:
                    raise RegistryError(f"model {name!r} has no versions")
                version = int(entry["latest"])
            elif selector.isdigit():
                version = int(selector)
            elif selector in entry["tags"]:
                version = int(entry["tags"][selector])
            else:
                raise RegistryError(
                    f"model {name!r} has no version or tag {selector!r}; "
                    f"tags: {sorted(entry['tags'])}"
                )
            for record in entry["versions"]:
                if record["version"] == version:
                    return self._to_version(name, record)
        raise RegistryError(f"model {name!r} has no version {version}")

    def resolve(self, ref: str) -> Path:
        """The artifact path behind a reference (shortcut for ``get(ref).path``)."""
        return self.get(ref).path

    def list(self, name: str | None = None) -> list[ModelVersion]:
        """All versions of one model (or of every model), oldest first."""
        with self._lock:
            if name is not None:
                names = [name] if name in self._index["models"] else []
                if not names:
                    self._entry(name)  # raises with the helpful message
            else:
                names = sorted(self._index["models"])
            return [
                self._to_version(model, record)
                for model in names
                for record in self._index["models"][model]["versions"]
            ]

    def names(self) -> list[str]:
        """The registered model names."""
        with self._lock:
            return sorted(self._index["models"])

    def lineage(self, ref: str) -> list[ModelVersion]:
        """The parent chain of ``ref``, newest first, ending at a root version."""
        chain = [self.get(ref)]
        while chain[-1].parent is not None:
            chain.append(self.get(f"{chain[-1].name}@{chain[-1].parent}"))
        return chain

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def tag(self, ref: str, tag: str) -> ModelVersion:
        """Point ``tag`` at the version ``ref`` resolves to (moving it if set)."""
        target = self.get(ref)
        self._check_tag(tag)
        with self._lock:
            entry = self._entry(target.name)
            entry["tags"][tag] = target.version
            self._write_index()
        return self.get(f"{target.name}@{tag}")

    def gc(
        self,
        name: str | None = None,
        *,
        keep_last: int = 3,
        keep_tagged: bool = True,
    ) -> list[ModelVersion]:
        """Delete superseded versions; returns the versions removed.

        The newest ``keep_last`` versions of each model survive, as do (by
        default) tagged versions and any version that is the parent of a
        surviving one (so lineage chains of the kept versions never dangle).
        Artifact files are unlinked after the index stops referencing them.
        """
        if keep_last < 1:
            raise RegistryError("keep_last must be at least 1")
        removed: list[ModelVersion] = []
        with self._lock:
            names = [name] if name is not None else sorted(self._index["models"])
            for model in names:
                entry = self._entry(model)
                records = entry["versions"]
                keep = {r["version"] for r in records[-keep_last:]}
                if keep_tagged:
                    keep.update(int(v) for v in entry["tags"].values())
                # Parents of kept versions survive transitively.
                by_version = {r["version"]: r for r in records}
                frontier = list(keep)
                while frontier:
                    parent = by_version.get(frontier.pop(), {}).get("parent")
                    if parent is not None and parent not in keep:
                        keep.add(parent)
                        frontier.append(parent)
                doomed = [r for r in records if r["version"] not in keep]
                if not doomed:
                    continue
                removed.extend(self._to_version(model, r) for r in doomed)
                entry["versions"] = [r for r in records if r["version"] in keep]
            if removed:
                self._write_index()
        for version in removed:
            try:
                version.path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        return removed

    # ------------------------------------------------------------------
    def verify(self, ref: str) -> ModelVersion:
        """Check that ``ref``'s artifact still matches its indexed checksum."""
        version = self.get(ref)
        try:
            actual = artifact_checksum(version.path)
        except (OSError, ArtifactFormatError) as exc:
            raise RegistryError(f"{version.ref}: artifact unreadable ({exc})") from exc
        if actual != version.checksum:
            raise RegistryError(
                f"{version.ref}: checksum drift (index {version.checksum[:12]}..., "
                f"file {actual[:12]}...)"
            )
        return version

    def __len__(self) -> int:
        with self._lock:
            return sum(
                len(e["versions"]) for e in self._index["models"].values()
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry(root={str(self.root)!r}, versions={len(self)})"
