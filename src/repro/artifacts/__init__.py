"""Persistent model artifacts for learned SGL graphs.

``SGLearner.fit`` results were historically learn-and-discard; this package
gives them a binary on-disk form (one checksummed, versioned ``.npz`` per
model — graph, spectral embedding, config, engine stats, stage timings) so a
serving process (:mod:`repro.serve`) can answer queries against a learned
graph long after — and far away from — the learner run that produced it.

Entry points:

* :func:`save_result` / ``SGLearner.fit(checkpoint_path=...)`` — persist a
  learning run;
* :func:`load_result` — validated load (schema version, dtypes, canonical
  edge form, SHA-256 payload checksum) returning a :class:`ModelArtifact`;
* :func:`artifact_checksum` — the stored identity key without a full load.
* :func:`save_sharded_result` / :func:`load_sharded_result` — a partition-
  parallel model as a directory of per-shard artifacts plus a boundary file,
  all under a checksummed ``manifest.json`` (:mod:`repro.artifacts.sharded`).
* :class:`ModelRegistry` — a local named-and-versioned model store
  (``publish`` / ``get`` / ``list`` / ``tag`` / ``gc`` over a queryable,
  atomically rewritten JSON index with lineage) through which ``bench``,
  ``repro-serve`` and the :mod:`repro.stream` update loop resolve
  ``name@version`` references instead of ad-hoc paths
  (:mod:`repro.artifacts.registry`).
"""

from repro.artifacts.registry import (
    ModelRegistry,
    ModelVersion,
    RegistryError,
    is_model_ref,
    parse_model_ref,
)
from repro.artifacts.sharded import (
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    ShardManifestError,
    ShardedModelArtifact,
    load_sharded_result,
    save_sharded_result,
)
from repro.artifacts.store import (
    ARTIFACT_SCHEMA,
    ARTIFACT_VERSION,
    ArtifactFormatError,
    ModelArtifact,
    artifact_checksum,
    load_result,
    payload_checksum,
    save_artifact,
    save_result,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ARTIFACT_VERSION",
    "MANIFEST_SCHEMA",
    "MANIFEST_VERSION",
    "ArtifactFormatError",
    "ModelArtifact",
    "ModelRegistry",
    "ModelVersion",
    "RegistryError",
    "ShardManifestError",
    "ShardedModelArtifact",
    "artifact_checksum",
    "is_model_ref",
    "load_result",
    "load_sharded_result",
    "parse_model_ref",
    "payload_checksum",
    "save_artifact",
    "save_result",
    "save_sharded_result",
]
