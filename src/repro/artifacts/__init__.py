"""Persistent model artifacts for learned SGL graphs.

``SGLearner.fit`` results were historically learn-and-discard; this package
gives them a binary on-disk form (one checksummed, versioned ``.npz`` per
model — graph, spectral embedding, config, engine stats, stage timings) so a
serving process (:mod:`repro.serve`) can answer queries against a learned
graph long after — and far away from — the learner run that produced it.

Entry points:

* :func:`save_result` / ``SGLearner.fit(checkpoint_path=...)`` — persist a
  learning run;
* :func:`load_result` — validated load (schema version, dtypes, canonical
  edge form, SHA-256 payload checksum) returning a :class:`ModelArtifact`;
* :func:`artifact_checksum` — the stored identity key without a full load.
"""

from repro.artifacts.store import (
    ARTIFACT_SCHEMA,
    ARTIFACT_VERSION,
    ArtifactFormatError,
    ModelArtifact,
    artifact_checksum,
    load_result,
    payload_checksum,
    save_artifact,
    save_result,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ARTIFACT_VERSION",
    "ArtifactFormatError",
    "ModelArtifact",
    "artifact_checksum",
    "load_result",
    "payload_checksum",
    "save_artifact",
    "save_result",
]
