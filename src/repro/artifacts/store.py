"""Versioned, checksummed binary persistence of learned SGL models.

An SGL *model artifact* is a single ``.npz`` file bundling everything a
serving process needs to answer queries against a learned graph without
re-running the learner:

==================  =====================================================
npz key             contents
==================  =====================================================
``graph_rows``      canonical edge sources (``int64``, ``rows < cols``)
``graph_cols``      canonical edge targets (``int64``)
``graph_weights``   edge conductances (``float64``, strictly positive)
``embedding``       optional ``(N, r-1)`` spectral embedding (``float64``;
                    empty ``(0, 0)`` array when not stored)
``meta_json``       UTF-8 JSON blob (``uint8``): schema name + version,
                    ``n_nodes``, the :class:`~repro.core.SGLConfig` used,
                    ``engine_stats``, :class:`~repro.core.instrumentation.
                    StageTimings`, payload checksum and provenance
==================  =====================================================

Integrity is layered: :func:`load_result` checks the schema name, rejects
unknown schema versions, validates every array's dtype/shape/canonical-form
invariant, and recomputes the SHA-256 payload checksum over the binary
arrays before rebuilding the graph through the trusted constructor.  The
round trip is *exact*: ``load(save(result)).graph`` compares equal to
``result.graph`` down to bit-identical edge arrays and weights.

The payload checksum doubles as the artifact's identity: the serving layer
(:class:`repro.serve.GraphService`) keys its LRU session cache on it, so the
same model reached through two paths shares one session.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
import zipfile
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import SGLConfig
from repro.core.instrumentation import StageTimings
from repro.graphs.graph import WeightedGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core.sgl saves us)
    from repro.core.sgl import SGLResult

__all__ = [
    "ARTIFACT_SCHEMA",
    "ARTIFACT_VERSION",
    "ArtifactFormatError",
    "ModelArtifact",
    "artifact_checksum",
    "load_result",
    "payload_checksum",
    "save_artifact",
    "save_result",
]

ARTIFACT_SCHEMA = "repro.model"
ARTIFACT_VERSION = 1

#: Required dtype of every payload array, enforced on save *and* load.
_PAYLOAD_DTYPES = {
    "graph_rows": np.dtype(np.int64),
    "graph_cols": np.dtype(np.int64),
    "graph_weights": np.dtype(np.float64),
    "embedding": np.dtype(np.float64),
}


class ArtifactFormatError(ValueError):
    """A model artifact is corrupt, truncated or from an unsupported schema."""


@dataclass(frozen=True)
class ModelArtifact:
    """A learned model loaded back from disk (see :func:`load_result`).

    Attributes
    ----------
    graph:
        The learned resistor network, bit-identical to what was saved.
    config:
        The :class:`~repro.core.SGLConfig` the model was learned with.
    embedding:
        The stored ``(N, r-1)`` spectral embedding, or ``None`` when the
        artifact was saved without one (resistance queries still work;
        nearest-neighbour queries need it).
    engine_stats:
        The learner's embedding-engine counters, or ``None``.
    timings:
        The learner's per-stage wall-clock counters (empty when not saved).
    checksum:
        SHA-256 payload checksum — the artifact's identity, used as the
        serving layer's session-cache key.
    meta:
        The full decoded metadata blob (provenance: ``created_at``, library
        versions, ``source``).
    mmapped:
        True when the payload arrays are read-only memory maps into the
        artifact file (``load_result(..., mmap_mode="r")`` on an
        uncompressed artifact) instead of in-heap copies.
    """

    graph: WeightedGraph
    config: SGLConfig
    embedding: np.ndarray | None
    engine_stats: dict | None
    timings: StageTimings
    checksum: str
    meta: dict = field(default_factory=dict)
    mmapped: bool = False

    @property
    def n_nodes(self) -> int:
        """Number of nodes of the stored graph."""
        return self.graph.n_nodes

    @property
    def has_embedding(self) -> bool:
        """Whether a spectral embedding was stored alongside the graph."""
        return self.embedding is not None


def payload_checksum(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over the payload arrays in a canonical byte encoding.

    Each array contributes its name, dtype string, shape and C-order bytes,
    in sorted name order, so the checksum is independent of dict ordering
    and memory layout but sensitive to any value, dtype or shape change.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.artifacts import payload_checksum
    >>> a = {"x": np.arange(3, dtype=np.int64)}
    >>> b = {"x": np.arange(3, dtype=np.int64).copy()}
    >>> payload_checksum(a) == payload_checksum(b)
    True
    >>> payload_checksum({"x": np.arange(3, dtype=np.float64)}) == payload_checksum(a)
    False
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(array.dtype.str.encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def _environment_meta() -> dict:
    import scipy

    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "scipy": scipy.__version__,
    }


def _config_to_meta(config: SGLConfig) -> dict:
    data = asdict(config)
    # JSON has no Infinity literal in the strict standard; encode the
    # sigma^2 -> inf default portably instead of leaning on Python's
    # non-standard ``Infinity`` token.
    if np.isinf(data["sigma_sq"]):
        data["sigma_sq"] = "inf"
    return data

def _config_from_meta(data: dict) -> SGLConfig:
    data = dict(data)
    if data.get("sigma_sq") == "inf":
        data["sigma_sq"] = np.inf
    try:
        return SGLConfig(**data)
    except (TypeError, ValueError) as exc:
        raise ArtifactFormatError(f"stored SGLConfig is invalid: {exc}") from exc


def save_artifact(
    graph: WeightedGraph,
    config: SGLConfig,
    path: str | Path,
    *,
    embedding: np.ndarray | None = None,
    engine_stats: dict | None = None,
    timings: StageTimings | None = None,
    source: str = "save_artifact",
    compress: bool = True,
) -> Path:
    """Low-level writer: persist a graph + config (+ optional extras).

    Most callers want :func:`save_result` (persist a whole
    :class:`~repro.core.sgl.SGLResult`) or the
    ``SGLearner.fit(checkpoint_path=...)`` hook; this entry point exists for
    models that did not come out of the learner (tests, external graphs).
    ``compress=False`` stores the payload arrays uncompressed
    (``np.savez``), which costs disk but lets :func:`load_result` serve
    them as zero-copy memory maps (``mmap_mode="r"``) — the trade the
    read-only serve path wants.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.artifacts import load_result, save_artifact
    >>> from repro.core.config import SGLConfig
    >>> from repro.graphs.generators import grid_2d
    >>> path = os.path.join(tempfile.mkdtemp(), "model.npz")
    >>> _ = save_artifact(grid_2d(4, 4), SGLConfig(), path)
    >>> load_result(path).graph.n_nodes
    16
    """
    if not isinstance(graph, WeightedGraph):
        raise TypeError("graph must be a WeightedGraph")
    if not isinstance(config, SGLConfig):
        raise TypeError("config must be an SGLConfig")
    if embedding is not None:
        embedding = np.asarray(embedding, dtype=np.float64)
        if embedding.ndim != 2 or embedding.shape[0] != graph.n_nodes:
            raise ValueError(
                "embedding must be an (n_nodes, r) matrix matching the graph"
            )
    arrays = {
        "graph_rows": np.ascontiguousarray(graph.rows, dtype=np.int64),
        "graph_cols": np.ascontiguousarray(graph.cols, dtype=np.int64),
        "graph_weights": np.ascontiguousarray(graph.weights, dtype=np.float64),
        "embedding": (
            embedding if embedding is not None else np.empty((0, 0), dtype=np.float64)
        ),
    }
    meta = {
        "schema": ARTIFACT_SCHEMA,
        "schema_version": ARTIFACT_VERSION,
        "n_nodes": graph.n_nodes,
        "has_embedding": embedding is not None,
        "config": _config_to_meta(config),
        "engine_stats": engine_stats,
        "timings": (timings or StageTimings()).as_dict(),
        "checksum": payload_checksum(arrays),
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": _environment_meta(),
        "source": source,
    }
    meta_blob = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    writer = np.savez_compressed if compress else np.savez
    with path.open("wb") as handle:
        writer(handle, meta_json=meta_blob, **arrays)
    return path


def save_result(
    result: "SGLResult",
    path: str | Path,
    *,
    include_embedding: bool = True,
    embedding: np.ndarray | None = None,
    compress: bool = True,
) -> Path:
    """Persist a learned :class:`~repro.core.sgl.SGLResult` as a model artifact.

    Parameters
    ----------
    result:
        The learner's output; its graph, config, engine stats and stage
        timings are all stored.
    path:
        Target ``.npz`` path (parent directories are created).
    include_embedding:
        When True (default) and no explicit ``embedding`` is given, the
        spectral embedding of the *learned* graph is computed here (one
        eigensolve, using the result's own config) and stored, so serving
        can answer nearest-neighbour and cluster queries without touching
        an eigensolver at load time.
    embedding:
        Explicit ``(N, r-1)`` embedding matrix to store instead.
    compress:
        Forwarded to :func:`save_artifact`; ``False`` stores raw payloads
        that :func:`load_result` can memory-map.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro import learn_graph, simulate_measurements
    >>> from repro.artifacts import load_result, save_result
    >>> from repro.graphs.generators import grid_2d
    >>> data = simulate_measurements(grid_2d(6, 6), n_measurements=30, seed=0)
    >>> result = learn_graph(data, beta=0.05)
    >>> path = os.path.join(tempfile.mkdtemp(), "grid.npz")
    >>> _ = save_result(result, path)
    >>> loaded = load_result(path)
    >>> loaded.graph == result.graph and loaded.has_embedding
    True
    """
    config = result.config
    if embedding is None and include_embedding:
        from repro.embedding.spectral import spectral_embedding_matrix

        embedding = spectral_embedding_matrix(
            result.graph,
            config.r,
            sigma_sq=config.sigma_sq,
            method=config.eigensolver,
            seed=config.seed,
            multilevel_coarse_size=config.multilevel_coarse_size,
        ).coordinates
    return save_artifact(
        result.graph,
        config,
        path,
        embedding=embedding,
        engine_stats=result.engine_stats,
        timings=result.timings,
        source="SGLearner.fit",
        compress=compress,
    )


def _load_meta(data) -> dict:
    if "meta_json" not in data:
        raise ArtifactFormatError("missing 'meta_json' entry (not a model artifact)")
    try:
        meta = json.loads(bytes(data["meta_json"].tobytes()).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactFormatError(f"metadata blob is not valid JSON ({exc})") from exc
    if not isinstance(meta, dict):
        raise ArtifactFormatError("metadata blob must decode to an object")
    if meta.get("schema") != ARTIFACT_SCHEMA:
        raise ArtifactFormatError(
            f"schema must be {ARTIFACT_SCHEMA!r}, got {meta.get('schema')!r}"
        )
    if meta.get("schema_version") != ARTIFACT_VERSION:
        raise ArtifactFormatError(
            f"unsupported schema_version {meta.get('schema_version')!r} "
            f"(this reader supports {ARTIFACT_VERSION})"
        )
    return meta


def artifact_checksum(path: str | Path) -> str:
    """The stored payload checksum of an artifact, without full validation.

    Cheap enough to key a session cache on (the arrays are decompressed
    only by :func:`load_result`, which also *verifies* the checksum).
    """
    with np.load(Path(path), allow_pickle=False) as data:
        meta = _load_meta(data)
    checksum = meta.get("checksum")
    if not isinstance(checksum, str) or not checksum:
        raise ArtifactFormatError("metadata is missing the payload checksum")
    return checksum


def _mmap_payload(path: Path) -> dict[str, np.ndarray] | None:
    """Read-only memory maps of the payload arrays, or ``None`` if unmappable.

    ``np.load(mmap_mode=...)`` silently ignores the request for zip
    archives, so this maps the members by hand: locate each ``<name>.npy``
    member, require it to be stored uncompressed (``ZIP_STORED`` — deflate
    streams cannot be mapped), parse its local file header to find the
    absolute data offset, read the npy header there, and hand the rest of
    the member to :class:`numpy.memmap`.  Zero-element arrays are returned
    as plain empty arrays (a zero-length map is invalid).
    """
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, path.open("rb") as raw:
        for name in _PAYLOAD_DTYPES:
            try:
                info = archive.getinfo(name + ".npy")
            except KeyError:
                return None
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            # The local file header's name/extra lengths may differ from the
            # central directory's, so the data offset must come from the
            # local header itself: 30 fixed bytes + name + extra.
            raw.seek(info.header_offset)
            header = raw.read(30)
            if len(header) != 30 or header[:4] != b"PK\x03\x04":
                return None
            name_len, extra_len = struct.unpack("<HH", header[26:30])
            raw.seek(info.header_offset + 30 + name_len + extra_len)
            try:
                version = np.lib.format.read_magic(raw)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
                else:
                    return None
            except ValueError:
                return None
            if dtype.hasobject:
                return None
            if int(np.prod(shape)) == 0:
                arrays[name] = np.empty(shape, dtype=dtype)
                continue
            arrays[name] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=raw.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    return arrays


def load_result(path: str | Path, *, mmap_mode: str | None = None) -> ModelArtifact:
    """Load and validate a model artifact written by :func:`save_result`.

    Validation layers, in order: npz readability, metadata JSON + schema
    name/version, presence/dtype/shape of every payload array, canonical
    edge-form invariants (``rows < cols``, lexsorted, duplicate-free,
    positive weights, endpoints within ``n_nodes``), and finally a SHA-256
    payload checksum recomputation.  Any violation raises
    :class:`ArtifactFormatError` naming the offending field.

    Parameters
    ----------
    path:
        Artifact ``.npz`` path.
    mmap_mode:
        ``"r"`` serves the payload arrays as read-only memory maps into the
        file instead of heap copies — pages are shared across processes and
        nothing is duplicated at load time, which is what the serving
        replicas want (ROADMAP item 4).  Requires an artifact saved with
        ``compress=False``; compressed artifacts fall back to a normal
        in-heap load (``ModelArtifact.mmapped`` tells which happened).
        Validation (including the checksum recomputation) still runs — it
        streams the mapped pages once but allocates no second copy.

    Returns
    -------
    ModelArtifact
        With the graph rebuilt through the trusted canonical constructor —
        i.e. without re-sorting — so the round trip is exact.
    """
    if mmap_mode not in (None, "r"):
        raise ValueError(
            f"mmap_mode must be None or 'r' (artifacts are immutable), "
            f"got {mmap_mode!r}"
        )
    path = Path(path)
    arrays: dict[str, np.ndarray] | None = None
    mmapped = False
    try:
        if mmap_mode is not None:
            arrays = _mmap_payload(path)
            mmapped = arrays is not None
        with np.load(path, allow_pickle=False) as data:
            meta = _load_meta(data)
            if arrays is None:
                arrays = {}
                for name in _PAYLOAD_DTYPES:
                    if name not in data:
                        raise ArtifactFormatError(f"missing payload array {name!r}")
                    arrays[name] = data[name]
        for name, dtype in _PAYLOAD_DTYPES.items():
            if arrays[name].dtype != dtype:
                raise ArtifactFormatError(
                    f"{name!r} must have dtype {dtype}, got {arrays[name].dtype}"
                )
    except (OSError, zipfile.BadZipFile, ValueError) as exc:
        if isinstance(exc, ArtifactFormatError):
            raise
        raise ArtifactFormatError(f"{path}: unreadable artifact ({exc})") from exc

    rows, cols, weights = (
        arrays["graph_rows"],
        arrays["graph_cols"],
        arrays["graph_weights"],
    )
    if not (rows.ndim == cols.ndim == weights.ndim == 1):
        raise ArtifactFormatError("edge arrays must be one-dimensional")
    if not (rows.shape == cols.shape == weights.shape):
        raise ArtifactFormatError("edge arrays must have identical lengths")
    n_nodes = meta.get("n_nodes")
    if not isinstance(n_nodes, int) or n_nodes < 0:
        raise ArtifactFormatError("metadata 'n_nodes' must be a non-negative integer")
    if rows.size:
        if rows.min() < 0 or max(int(rows.max()), int(cols.max())) >= n_nodes:
            raise ArtifactFormatError("edge endpoint out of range for n_nodes")
        if not np.all(rows < cols):
            raise ArtifactFormatError("edges are not in canonical rows < cols form")
        keys = rows * np.int64(n_nodes) + cols
        if not np.all(np.diff(keys) > 0):
            raise ArtifactFormatError("edges are not lexsorted and duplicate-free")
        if not np.all(weights > 0):
            raise ArtifactFormatError("edge weights must be strictly positive")
        if not np.all(np.isfinite(weights)):
            raise ArtifactFormatError("edge weights must be finite")

    stored_checksum = meta.get("checksum")
    if not isinstance(stored_checksum, str) or not stored_checksum:
        raise ArtifactFormatError("metadata is missing the payload checksum")
    actual = payload_checksum(arrays)
    if actual != stored_checksum:
        raise ArtifactFormatError(
            f"payload checksum mismatch (stored {stored_checksum[:12]}..., "
            f"recomputed {actual[:12]}...): artifact is corrupt"
        )

    embedding: np.ndarray | None = arrays["embedding"]
    if not meta.get("has_embedding", embedding.size > 0):
        embedding = None
    elif embedding.ndim != 2 or embedding.shape[0] != n_nodes:
        raise ArtifactFormatError(
            "stored embedding must be an (n_nodes, r) matrix"
        )

    graph = WeightedGraph._from_canonical(n_nodes, rows, cols, weights)
    engine_stats = meta.get("engine_stats")
    if engine_stats is not None and not isinstance(engine_stats, dict):
        raise ArtifactFormatError("metadata 'engine_stats' must be an object or null")
    timings_data = meta.get("timings", {})
    if not isinstance(timings_data, dict):
        raise ArtifactFormatError("metadata 'timings' must be an object")
    try:
        timings = StageTimings.from_dict(timings_data)
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactFormatError(f"metadata 'timings' is malformed: {exc}") from exc
    return ModelArtifact(
        graph=graph,
        config=_config_from_meta(meta.get("config", {})),
        embedding=embedding,
        engine_stats=engine_stats,
        timings=timings,
        checksum=stored_checksum,
        meta=meta,
        mmapped=mmapped,
    )
