"""Online graph learning over measurement streams (ROADMAP item 3).

The batch pipeline learns once and freezes; this package keeps the learned
graph *live* while measurement batches keep arriving:

* :class:`OnlineSGLearner` — wraps :class:`~repro.core.SGLearner`; per batch
  it chooses between a cheap warm-started incremental pass and a full refit,
  emits ``stream.update`` spans with per-stage timings, and publishes a
  versioned snapshot (with lineage) to a
  :class:`~repro.artifacts.ModelRegistry` so serving can hot-swap to it
  (:mod:`repro.stream.learner`);
* :class:`DriftDetector` / :class:`DriftDecision` — the refit-vs-incremental
  policy: subspace novelty + energy-ratio statistics over the incoming batch,
  a forced refit cadence and an objective-degradation latch
  (:mod:`repro.stream.drift`);
* :class:`MeasurementStream` — additive / drifting / shifting synthetic
  measurement sources for tests and the ``stream`` bench scenario
  (:mod:`repro.stream.generators`).

Examples
--------
>>> from repro.graphs.generators import grid_2d
>>> from repro.stream import MeasurementStream, OnlineSGLearner
>>> stream = MeasurementStream(grid_2d(6, 6), batch_size=10, seed=0)
>>> learner = OnlineSGLearner(beta=0.05, max_iterations=30)
>>> _ = learner.fit(stream.next_batch())
>>> update = learner.update(stream.next_batch())
>>> update.graph.is_connected()
True
"""

from repro.stream.drift import DriftDecision, DriftDetector
from repro.stream.generators import STREAM_MODES, MeasurementStream
from repro.stream.learner import OnlineSGLearner, StreamUpdate

__all__ = [
    "DriftDecision",
    "DriftDetector",
    "MeasurementStream",
    "OnlineSGLearner",
    "STREAM_MODES",
    "StreamUpdate",
]
