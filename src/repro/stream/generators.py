"""Drifting measurement streams for online-learning experiments.

The batch experiments in :mod:`repro.bench` draw all ``M`` measurements from
one frozen ground-truth network.  The online setting of ROADMAP item 3 is
different: measurement batches arrive over time and the network *itself* may
be changing underneath them.  :class:`MeasurementStream` models both regimes:

* ``mode="additive"`` — the truth stays fixed and every batch simply adds
  fresh measurement columns (the stationary case an incremental update
  should handle without ever refitting);
* ``mode="drift"`` — every batch first perturbs the true edge conductances
  multiplicatively (``w *= exp(rate * standard_normal)``), modelling slow
  component ageing / thermal drift in a power-delivery network;
* ``mode="shift"`` — the truth stays fixed until ``shift_at`` batches have
  been drawn, then jumps once by a large perturbation (an abrupt regime
  change the drift detector must catch and answer with a full refit).

Each batch is an ordinary :class:`~repro.measurements.MeasurementSet`
(voltages *and* currents, so Step-5 edge scaling keeps working online), and
:attr:`MeasurementStream.truth` always exposes the network the most recent
batch was measured on — the reference bench quality metrics compare against.

Examples
--------
>>> from repro.graphs.generators import grid_2d
>>> from repro.stream import MeasurementStream
>>> stream = MeasurementStream(grid_2d(6, 6), batch_size=8, mode="drift",
...                            drift_rate=0.05, seed=0)
>>> batch = stream.next_batch()
>>> batch.voltages.shape
(36, 8)
>>> stream.truth is not stream.initial_truth  # drift perturbed the weights
True
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.solvers import LaplacianSolver
from repro.measurements.generator import MeasurementSet, random_current_vectors

__all__ = ["MeasurementStream", "STREAM_MODES"]

#: Supported stream regimes, in order of how hostile they are to a
#: warm-started incremental update.
STREAM_MODES: tuple[str, ...] = ("additive", "drift", "shift")


class MeasurementStream:
    """A source of timed measurement batches over a (possibly drifting) truth.

    Parameters
    ----------
    graph:
        The initial ground-truth resistor network.
    batch_size:
        Measurement pairs per batch.
    mode:
        One of :data:`STREAM_MODES`; see the module docstring.
    drift_rate:
        Log-normal scale of the per-batch weight perturbation (``drift``
        mode) or of the single jump (``shift`` mode, where it is amplified
        by ``shift_scale``).
    shift_at:
        Batch index (0-based) *before* which the ``shift`` jump is applied.
    shift_scale:
        Multiplier on ``drift_rate`` for the one-off ``shift`` jump.
    seed:
        Seed for both the weight perturbations and the current excitations.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        batch_size: int,
        *,
        mode: str = "additive",
        drift_rate: float = 0.05,
        shift_at: int = 2,
        shift_scale: float = 10.0,
        seed: int | None = 0,
    ) -> None:
        if mode not in STREAM_MODES:
            raise ValueError(f"mode must be one of {STREAM_MODES}, got {mode!r}")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if drift_rate < 0:
            raise ValueError("drift_rate must be non-negative")
        self.initial_truth = graph
        self.batch_size = int(batch_size)
        self.mode = mode
        self.drift_rate = float(drift_rate)
        self.shift_at = int(shift_at)
        self.shift_scale = float(shift_scale)
        self._rng = np.random.default_rng(seed)
        self._truth = graph
        self._solver = LaplacianSolver(graph)
        self._n_batches = 0

    # ------------------------------------------------------------------
    @property
    def truth(self) -> WeightedGraph:
        """The ground-truth network the *next* batch will be measured on."""
        return self._truth

    @property
    def n_batches(self) -> int:
        """Number of batches drawn so far."""
        return self._n_batches

    def _perturb(self, rate: float) -> None:
        """Multiplicatively perturb the true conductances and rebuild the solver."""
        factors = np.exp(rate * self._rng.standard_normal(self._truth.n_edges))
        self._truth = self._truth.with_weights(self._truth.weights * factors)
        self._solver = LaplacianSolver(self._truth)

    def next_batch(self) -> MeasurementSet:
        """Draw the next measurement batch (advancing the truth when drifting)."""
        if self.mode == "drift" and self.drift_rate > 0:
            self._perturb(self.drift_rate)
        elif self.mode == "shift" and self._n_batches == self.shift_at:
            self._perturb(self.drift_rate * self.shift_scale)
        currents = random_current_vectors(
            self._truth.n_nodes, self.batch_size, rng=self._rng
        )
        voltages = self._solver.solve(currents)
        self._n_batches += 1
        return MeasurementSet(voltages=voltages, currents=currents, noise_level=0.0)

    def batches(self, n: int):
        """Yield ``n`` consecutive batches."""
        for _ in range(n):
            yield self.next_batch()
