"""Drift detection for the online learner's refit-vs-incremental decision.

Every :meth:`~repro.stream.OnlineSGLearner.update` has to answer one
question: is the incoming batch still explained by the graph we already
learned (cheap warm-started incremental pass) or has the measurement
distribution moved enough that only a full refit restores quality?

:class:`DriftDetector` answers it with per-batch statistics that cost one
sparse matrix product — negligible next to even a warm embedding refresh —
each judged *relative to a baseline calibrated at the last full refit*
(absolute thresholds do not transfer between a 256-node mesh and a
4900-node circuit):

* **model residual** — the learned Laplacian ``L`` should reproduce the
  measured excitations: ``||L x - y|| / ||y||`` per batch column.  The
  baseline is the same residual over the reference window; a batch measured
  on a drifted network raises the ratio (an abrupt conductance shift is a
  1.3-2x jump, fresh excitations of the unchanged network stay within a
  few percent).  This is the primary, *objective-degradation* trigger —
  it needs current excitations in the stream;
* **subspace novelty** — the fraction of batch-column energy outside the
  reference window's top left-singular subspace, compared against the
  held-out half of the window itself (basis from the first half, baseline
  novelty from the second).  The voltage-only fallback;
* **energy ratio** — mean squared column norm against the reference
  window's, catching global conductance re-scaling (voltages scale as the
  inverse conductance) that leaves both shapes above unchanged.

Two triggers live outside the statistics: ``max_updates_between_refits``
forces a periodic refit so slow drift below every threshold cannot
accumulate forever, and the learner reports incremental-pass degradation
(residual edge sensitivity it failed to drive down) through
:meth:`flag_degradation`, which forces a refit on the next update.

Examples
--------
>>> import numpy as np
>>> from repro.stream import DriftDetector
>>> rng = np.random.default_rng(0)
>>> reference = rng.standard_normal((40, 5)) @ rng.standard_normal((5, 30))
>>> detector = DriftDetector(subspace_rank=5)
>>> detector.reset(reference)
>>> detector.assess(reference[:, :8]).refit   # same subspace: no refit
False
>>> detector.assess(rng.standard_normal((40, 8))).refit   # new energy
True
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DriftDecision", "DriftDetector"]


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of one :meth:`DriftDetector.assess` call.

    Attributes
    ----------
    refit:
        Whether the learner should run a full refit for this batch.
    reason:
        Which trigger fired: ``"residual"``, ``"novelty"``, ``"energy"``,
        ``"cadence"``, ``"degradation"`` or ``"stable"`` (no refit).
    residual_ratio:
        Mean learned-Laplacian residual of the batch over the reference
        window's (``nan`` when the stream carries no currents).
    novelty:
        Mean fraction of batch-column energy outside the reference subspace.
    energy_ratio:
        Mean batch column energy over the reference window's.
    updates_since_refit:
        Incremental updates accepted since the detector was last reset.
    """

    refit: bool
    reason: str
    residual_ratio: float
    novelty: float
    energy_ratio: float
    updates_since_refit: int

    def as_dict(self) -> dict:
        """JSON-ready form (stored in snapshot metadata)."""
        return {
            "refit": self.refit,
            "reason": self.reason,
            "residual_ratio": self.residual_ratio,
            "novelty": self.novelty,
            "energy_ratio": self.energy_ratio,
            "updates_since_refit": self.updates_since_refit,
        }


class DriftDetector:
    """Measurement-distribution drift detector (see module docstring).

    Parameters
    ----------
    residual_threshold:
        Refit when the batch's learned-Laplacian residual exceeds the
        reference window's by this factor.
    novelty_margin:
        Refit when the batch's out-of-subspace energy fraction exceeds the
        window's own held-out baseline by more than this margin.
    energy_threshold:
        Refit when the mean column-energy ratio leaves
        ``[1/energy_threshold, energy_threshold]``.
    subspace_rank:
        Rank of the reference left-singular basis (clipped to the window).
    max_updates_between_refits:
        Force a refit after this many consecutive incremental updates
        (``0`` disables the cadence trigger).
    """

    def __init__(
        self,
        *,
        residual_threshold: float = 1.25,
        novelty_margin: float = 0.15,
        energy_threshold: float = 4.0,
        subspace_rank: int = 8,
        max_updates_between_refits: int = 0,
    ) -> None:
        if residual_threshold <= 1.0:
            raise ValueError("residual_threshold must exceed 1")
        if not 0.0 < novelty_margin <= 1.0:
            raise ValueError("novelty_margin must be in (0, 1]")
        if energy_threshold <= 1.0:
            raise ValueError("energy_threshold must exceed 1")
        if subspace_rank < 1:
            raise ValueError("subspace_rank must be positive")
        if max_updates_between_refits < 0:
            raise ValueError("max_updates_between_refits must be >= 0")
        self.residual_threshold = float(residual_threshold)
        self.novelty_margin = float(novelty_margin)
        self.energy_threshold = float(energy_threshold)
        self.subspace_rank = int(subspace_rank)
        self.max_updates_between_refits = int(max_updates_between_refits)
        self._basis: np.ndarray | None = None
        self._baseline_novelty = 0.0
        self._reference_energy = 1.0
        self._laplacian = None
        self._baseline_residual: float | None = None
        self._updates_since_refit = 0
        self._degraded = False

    # ------------------------------------------------------------------
    @property
    def updates_since_refit(self) -> int:
        """Incremental updates accepted since the last :meth:`reset`."""
        return self._updates_since_refit

    @staticmethod
    def _split(measurements) -> tuple[np.ndarray, np.ndarray | None]:
        """``(voltages, currents_or_None)`` from a MeasurementSet or array."""
        if hasattr(measurements, "voltages"):
            return measurements.voltages, measurements.currents
        return np.asarray(measurements, dtype=np.float64), None

    def reset(self, measurements, graph=None) -> None:
        """Recalibrate the baselines after a full refit.

        ``measurements`` is the reference window (a
        :class:`~repro.measurements.MeasurementSet` or a bare voltage
        matrix); ``graph`` the freshly learned (scaled) graph.  The model
        residual baseline needs both the graph and current excitations —
        without them the detector falls back to the novelty / energy
        statistics alone.
        """
        voltages, currents = self._split(measurements)
        if voltages.ndim != 2 or voltages.shape[1] < 1:
            raise ValueError("reference voltages must be a non-empty (N, M) matrix")
        # Basis from the first half, baseline novelty from the held-out
        # second half: an in-sample baseline would understate what a fresh
        # batch of the *unchanged* network scores.
        half = max(1, voltages.shape[1] // 2)
        rank = min(self.subspace_rank, voltages.shape[0], half)
        basis, _, _ = np.linalg.svd(voltages[:, :half], full_matrices=False)
        self._basis = basis[:, :rank]
        holdout = voltages[:, half:] if voltages.shape[1] > half else voltages
        self._baseline_novelty = self._novelty(holdout)
        energy = float(np.mean(np.sum(voltages**2, axis=0)))
        self._reference_energy = energy if energy > 0 else 1.0
        self._laplacian = None
        self._baseline_residual = None
        if graph is not None and currents is not None:
            self._laplacian = graph.laplacian()
            self._baseline_residual = self._residual(voltages, currents)
        self._updates_since_refit = 0
        self._degraded = False

    def flag_degradation(self) -> None:
        """Force a refit on the next :meth:`assess` (objective degradation)."""
        self._degraded = True

    def _novelty(self, voltages: np.ndarray) -> float:
        energies = np.sum(voltages**2, axis=0)
        safe = np.where(energies > 0, energies, 1.0)
        captured = np.sum((self._basis.T @ voltages) ** 2, axis=0)
        return float(np.mean(np.clip(1.0 - captured / safe, 0.0, 1.0)))

    def _residual(self, voltages: np.ndarray, currents: np.ndarray) -> float:
        predicted = self._laplacian @ voltages
        norms = np.linalg.norm(currents, axis=0)
        norms = np.where(norms > 0, norms, 1.0)
        return float(np.mean(np.linalg.norm(predicted - currents, axis=0) / norms))

    def assess(self, measurements) -> DriftDecision:
        """Score a batch and decide refit vs incremental.

        The caller owns the follow-through: on ``refit`` it should run the
        full refit and :meth:`reset` with the new window and graph;
        otherwise the incremental-update counter advances.
        """
        if self._basis is None:
            raise RuntimeError("DriftDetector.assess called before reset()")
        voltages, currents = self._split(measurements)
        novelty = self._novelty(voltages)
        energies = np.sum(voltages**2, axis=0)
        energy_ratio = float(np.mean(energies) / self._reference_energy)
        residual_ratio = float("nan")
        if (
            self._laplacian is not None
            and currents is not None
            and self._baseline_residual
        ):
            residual_ratio = (
                self._residual(voltages, currents) / self._baseline_residual
            )
        reason = "stable"
        if self._degraded:
            reason = "degradation"
        elif residual_ratio == residual_ratio and (
            residual_ratio > self.residual_threshold
        ):
            reason = "residual"
        elif novelty > self._baseline_novelty + self.novelty_margin:
            reason = "novelty"
        elif not (1.0 / self.energy_threshold <= energy_ratio <= self.energy_threshold):
            reason = "energy"
        elif (
            self.max_updates_between_refits
            and self._updates_since_refit >= self.max_updates_between_refits
        ):
            reason = "cadence"
        refit = reason != "stable"
        decision = DriftDecision(
            refit=refit,
            reason=reason,
            residual_ratio=residual_ratio,
            novelty=novelty,
            energy_ratio=energy_ratio,
            updates_since_refit=self._updates_since_refit,
        )
        if not refit:
            self._updates_since_refit += 1
        return decision
