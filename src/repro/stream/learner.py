"""Online SGL: incremental graph updates over a stream of measurement batches.

:class:`OnlineSGLearner` wraps the batch :class:`~repro.core.SGLearner` for
the serve-N-while-fitting-N+1 world of ROADMAP item 3.  One initial
:meth:`fit` learns a graph from the first measurement window exactly as the
batch learner would; every subsequent :meth:`update` appends a new batch to
the window and then chooses, per batch, between two paths:

* **incremental** — a bounded number of densification mini-iterations over
  the *existing* candidate pool, reusing the persistent warm-started
  :class:`~repro.embedding.EmbeddingEngine` (Woodbury-corrected refreshes,
  no cold eigensolve) and finishing with a Step-5 rescale against the
  current window.  Cost: a few warm refreshes — a small fraction of a fit.
* **full refit** — the batch learner re-run on the whole window, rebuilding
  the kNN candidate pool and the embedding engine from scratch.  Chosen by
  the :class:`~repro.stream.DriftDetector` when the incoming batch's
  measurement distribution has left the learned subspace, when the energy
  scale jumps, on a forced cadence, or after the incremental path reported
  objective degradation (residual sensitivity it could not drive down).

Every accepted update emits a ``stream.update`` span (with per-stage child
spans via :class:`~repro.core.instrumentation.StageTimings`) and — when a
:class:`~repro.artifacts.ModelRegistry` is attached — publishes a versioned
snapshot whose lineage points at the previous version, so a follower
(``repro-serve --follow name@latest``) can hot-swap to it with zero downtime.

Examples
--------
>>> from repro.graphs.generators import grid_2d
>>> from repro.stream import MeasurementStream, OnlineSGLearner
>>> stream = MeasurementStream(grid_2d(6, 6), batch_size=8, seed=0)
>>> learner = OnlineSGLearner(beta=0.05, max_iterations=30)
>>> first = learner.fit(stream.next_batch())
>>> first.mode
'initial'
>>> second = learner.update(stream.next_batch())
>>> second.mode in ("incremental", "refit")
True
>>> learner.graph.n_nodes
36
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SGLConfig
from repro.core.history import IterationRecord, SGLHistory
from repro.core.instrumentation import StageTimings
from repro.core.scaling import spectral_edge_scaling
from repro.core.sensitivity import edge_sensitivities
from repro.core.sgl import SGLearner, SGLResult
from repro.embedding.engine import EmbeddingEngine
from repro.graphs.graph import WeightedGraph
from repro.measurements.generator import MeasurementSet
from repro.obs.tracing import set_attributes, span as obs_span
from repro.stream.drift import DriftDecision, DriftDetector

__all__ = ["OnlineSGLearner", "StreamUpdate"]


@dataclass(frozen=True)
class StreamUpdate:
    """Outcome of one accepted measurement batch.

    Attributes
    ----------
    index:
        0-based update counter (the initial :meth:`OnlineSGLearner.fit`
        is index 0 with mode ``"initial"``).
    mode:
        ``"initial"``, ``"incremental"`` or ``"refit"``.
    decision:
        The drift decision that chose the path (``None`` for the initial fit).
    graph:
        The scaled learned graph after this update.
    scaling_factor:
        Step-5 global conductance factor applied for this update.
    n_edges_added:
        Edges added to the learned topology by this update.
    max_sensitivity:
        Largest remaining candidate-edge sensitivity after the update.
    version:
        The registry snapshot published for this update (``None`` without a
        registry).
    timings:
        Per-stage wall-clock for this update only.
    wall_seconds:
        Total wall-clock of the update.
    """

    index: int
    mode: str
    decision: DriftDecision | None
    graph: WeightedGraph
    scaling_factor: float
    n_edges_added: int
    max_sensitivity: float
    version: object | None = None
    timings: StageTimings = field(default_factory=StageTimings)
    wall_seconds: float = 0.0


class OnlineSGLearner:
    """Incremental SGL over measurement batches (see module docstring).

    Parameters
    ----------
    config:
        The :class:`~repro.core.SGLConfig` for full (re)fits; keyword
        overrides may be passed instead, as with ``SGLearner``.  The online
        path requires the warm-capable incremental engine, so
        ``embedding_engine`` must not be ``"stateless"``.
    drift:
        The refit/incremental decision policy; a default
        :class:`~repro.stream.DriftDetector` is built otherwise.
    registry:
        Optional :class:`~repro.artifacts.ModelRegistry`; when given, every
        accepted update publishes a versioned snapshot under ``model_name``
        with lineage back to the previous snapshot.
    model_name:
        Registry name snapshots are published under.
    max_window:
        Keep at most this many newest measurement columns (``None`` =
        unbounded).  Bounds both refit cost and memory over a long stream.
    incremental_iterations:
        Densification mini-iterations per incremental update.
    degradation_ratio:
        After an incremental pass, residual max sensitivity above
        ``degradation_ratio * max(tol, last refit's final sensitivity)``
        flags objective degradation, forcing a refit on the next update
        (``None`` disables the check).
    """

    def __init__(
        self,
        config: SGLConfig | None = None,
        *,
        drift: DriftDetector | None = None,
        registry=None,
        model_name: str = "online",
        max_window: int | None = None,
        incremental_iterations: int = 2,
        degradation_ratio: float | None = 25.0,
        **overrides,
    ) -> None:
        if config is None:
            config = SGLConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        if config.embedding_engine == "stateless":
            raise ValueError(
                "OnlineSGLearner needs a warm-capable engine; "
                "use embedding_engine='incremental' or 'multilevel'"
            )
        if max_window is not None and max_window < 1:
            raise ValueError("max_window must be positive")
        if incremental_iterations < 1:
            raise ValueError("incremental_iterations must be positive")
        self.config = config
        self.drift = drift if drift is not None else DriftDetector()
        self.registry = registry
        self.model_name = model_name
        self.max_window = max_window
        self.incremental_iterations = int(incremental_iterations)
        self.degradation_ratio = degradation_ratio

        self._voltages: np.ndarray | None = None
        self._currents: np.ndarray | None = None
        self._graph: WeightedGraph | None = None  # unscaled working topology
        self._scaled_graph: WeightedGraph | None = None
        self._scaling_factor = 1.0
        self._candidates: WeightedGraph | None = None
        self._pool_edges: np.ndarray | None = None
        self._pool_weights: np.ndarray | None = None
        self._engine: EmbeddingEngine | None = None
        self._embedding: np.ndarray | None = None
        self._refit_sensitivity = config.tol
        self._last_result: SGLResult | None = None
        self._version = None
        self._n_updates = 0
        self.updates: list[StreamUpdate] = []

    # ------------------------------------------------------------------
    @property
    def graph(self) -> WeightedGraph:
        """The current scaled learned graph."""
        if self._scaled_graph is None:
            raise RuntimeError("call fit() before reading the learned graph")
        return self._scaled_graph

    @property
    def embedding(self):
        """The current :class:`~repro.embedding.SpectralEmbedding`."""
        if self._embedding is None:
            raise RuntimeError("call fit() before reading the embedding")
        return self._embedding

    @property
    def window(self) -> MeasurementSet:
        """The current measurement window as a :class:`MeasurementSet`."""
        if self._voltages is None:
            raise RuntimeError("call fit() before reading the window")
        return MeasurementSet(self._voltages, self._currents)

    @property
    def last_version(self):
        """The most recently published registry snapshot (or ``None``)."""
        return self._version

    @property
    def n_updates(self) -> int:
        """Accepted updates so far, the initial fit included."""
        return self._n_updates

    # ------------------------------------------------------------------
    def _append_window(self, batch: MeasurementSet) -> None:
        if self._voltages is None:
            self._voltages = batch.voltages.copy()
            self._currents = None if batch.currents is None else batch.currents.copy()
        else:
            if batch.n_nodes != self._voltages.shape[0]:
                raise ValueError("batch node count does not match the window")
            self._voltages = np.concatenate([self._voltages, batch.voltages], axis=1)
            if self._currents is not None and batch.currents is not None:
                self._currents = np.concatenate(
                    [self._currents, batch.currents], axis=1
                )
            else:
                self._currents = None
        if self.max_window is not None and self._voltages.shape[1] > self.max_window:
            self._voltages = self._voltages[:, -self.max_window :]
            if self._currents is not None:
                self._currents = self._currents[:, -self.max_window :]

    def _adopt_refit(self, result: SGLResult) -> None:
        """Rebuild the incremental working state from a fresh full fit."""
        config = self.config
        self._last_result = result
        self._graph = result.unscaled_graph
        self._scaled_graph = result.graph
        self._scaling_factor = result.scaling_factor
        self._candidates = result.knn_graph
        pool_mask = ~result.unscaled_graph.has_edges(self._candidates.edges)
        self._pool_edges = self._candidates.edges[pool_mask]
        self._pool_weights = self._candidates.weights[pool_mask].copy()
        self._engine = EmbeddingEngine(
            config.r,
            sigma_sq=config.sigma_sq,
            method=config.eigensolver,
            seed=config.seed,
            multilevel_coarse_size=config.multilevel_coarse_size,
        )
        self._embedding = self._engine.refresh(self._graph, None)
        final = result.history.records[-1].max_sensitivity if len(result.history) else 0.0
        self._refit_sensitivity = max(config.tol, final)
        self.drift.reset(self.window, self._scaled_graph)

    def _publish(self, timings: StageTimings, update: StreamUpdate | None, *, mode: str,
                 decision: DriftDecision | None, history: SGLHistory) -> object | None:
        if self.registry is None:
            return None
        with timings.stage("publish"):
            snapshot = SGLResult(
                graph=self._scaled_graph,
                unscaled_graph=self._graph,
                initial_graph=self._last_result.initial_graph,
                knn_graph=self._candidates,
                history=history,
                converged=True,
                scaling_factor=self._scaling_factor,
                config=self.config,
                timings=timings,
                engine_stats=self._engine.stats.as_dict(),
            )
            metadata = {
                "stream": {
                    "update": self._n_updates,
                    "mode": mode,
                    "decision": None if decision is None else decision.as_dict(),
                    "window_measurements": int(self._voltages.shape[1]),
                }
            }
            self._version = self.registry.publish(
                snapshot,
                self.model_name,
                parent=self._version,
                metadata=metadata,
                embedding=self._embedding.coordinates,
            )
        return self._version

    # ------------------------------------------------------------------
    def fit(self, measurements: MeasurementSet) -> StreamUpdate:
        """Learn the initial graph from the first measurement window."""
        if self._graph is not None:
            raise RuntimeError("fit() already ran; use update() for new batches")
        start = time.perf_counter()
        timings = StageTimings()
        with obs_span("stream.fit", n_nodes=measurements.n_nodes):
            self._append_window(measurements)
            result = SGLearner(self.config).fit(self.window, timings=timings)
            self._adopt_refit(result)
            version = self._publish(
                timings, None, mode="initial", decision=None, history=result.history
            )
        update = StreamUpdate(
            index=0,
            mode="initial",
            decision=None,
            graph=self._scaled_graph,
            scaling_factor=self._scaling_factor,
            n_edges_added=result.graph.n_edges - result.initial_graph.n_edges,
            max_sensitivity=(
                result.history.records[-1].max_sensitivity if len(result.history) else 0.0
            ),
            version=version,
            timings=timings,
            wall_seconds=time.perf_counter() - start,
        )
        self._n_updates = 1
        self.updates.append(update)
        return update

    def update(self, new_measurements: MeasurementSet) -> StreamUpdate:
        """Fold one new measurement batch into the learned graph."""
        if self._graph is None:
            raise RuntimeError("call fit() with the initial window first")
        start = time.perf_counter()
        timings = StageTimings()
        with obs_span(
            "stream.update",
            update=self._n_updates,
            n_new=new_measurements.n_measurements,
        ):
            with timings.stage("drift_check"):
                decision = self.drift.assess(new_measurements)
            self._append_window(new_measurements)
            if decision.refit:
                mode = "refit"
                result = SGLearner(self.config).fit(self.window, timings=timings)
                self._adopt_refit(result)
                history = result.history
                n_added = result.graph.n_edges - result.initial_graph.n_edges
                max_sensitivity = (
                    history.records[-1].max_sensitivity if len(history) else 0.0
                )
            else:
                mode = "incremental"
                history, n_added, max_sensitivity = self._incremental_pass(timings)
            version = self._publish(
                timings, None, mode=mode, decision=decision, history=history
            )
            set_attributes(
                mode=mode,
                reason=decision.reason,
                n_edges_added=n_added,
                max_sensitivity=max_sensitivity,
                version=None if version is None else version.version,
            )
        update = StreamUpdate(
            index=self._n_updates,
            mode=mode,
            decision=decision,
            graph=self._scaled_graph,
            scaling_factor=self._scaling_factor,
            n_edges_added=n_added,
            max_sensitivity=max_sensitivity,
            version=version,
            timings=timings,
            wall_seconds=time.perf_counter() - start,
        )
        self._n_updates += 1
        self.updates.append(update)
        return update

    # ------------------------------------------------------------------
    def _incremental_pass(
        self, timings: StageTimings
    ) -> tuple[SGLHistory, int, float]:
        """Bounded densification against the current window (no cold solve)."""
        config = self.config
        voltages = self._voltages
        history = SGLHistory()
        total_added = 0
        max_sensitivity = 0.0
        batch_size = config.edges_per_iteration(self._graph.n_nodes)
        for iteration in range(self.incremental_iterations):
            if self._pool_edges.shape[0] == 0:
                break
            with timings.stage("sensitivity"):
                sensitivities = edge_sensitivities(
                    self._embedding,
                    voltages,
                    self._pool_edges,
                    n_samples=config.sensitivity_samples,
                    seed=config.seed,
                )
            max_sensitivity = float(sensitivities.max())
            if max_sensitivity < config.tol:
                history.append(
                    IterationRecord(
                        iteration=iteration,
                        max_sensitivity=max_sensitivity,
                        n_edges=self._graph.n_edges,
                        n_edges_added=0,
                    )
                )
                break
            with timings.stage("edge_selection"):
                order = np.argsort(sensitivities)[::-1][:batch_size]
                chosen = order[sensitivities[order] > config.tol]
                add_edges = self._pool_edges[chosen]
                add_weights = self._pool_weights[chosen]
                self._graph = self._graph.add_edges(add_edges, add_weights)
                keep = np.ones(self._pool_edges.shape[0], dtype=bool)
                keep[chosen] = False
                self._pool_edges = self._pool_edges[keep]
                self._pool_weights = self._pool_weights[keep]
            total_added += int(chosen.size)
            history.append(
                IterationRecord(
                    iteration=iteration,
                    max_sensitivity=max_sensitivity,
                    n_edges=self._graph.n_edges,
                    n_edges_added=int(chosen.size),
                )
            )
            if chosen.size == 0:
                break
            # Warm-started refresh keyed to exactly the edges just added.
            refresh_start = time.perf_counter()
            self._embedding = self._engine.refresh(self._graph, add_edges)
            refresh_end = time.perf_counter()
            stage = (
                "embedding_warm"
                if self._engine.last_mode in ("warm-rr", "warm-inverse")
                else "embedding"
            )
            timings.add_interval(
                stage, refresh_start, refresh_end, mode=self._engine.last_mode
            )
        if config.edge_scaling and self._currents is not None:
            with timings.stage("edge_scaling"):
                self._scaled_graph, self._scaling_factor = spectral_edge_scaling(
                    self._graph, voltages, self._currents
                )
        else:
            self._scaled_graph = self._graph
            self._scaling_factor = 1.0
        if (
            self.degradation_ratio is not None
            and max_sensitivity > self.degradation_ratio * self._refit_sensitivity
        ):
            self.drift.flag_degradation()
        return history, total_added, max_sensitivity
