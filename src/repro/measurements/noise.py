"""Measurement noise model (paper Fig. 9).

Each voltage measurement vector ``x`` is perturbed multiplicatively:

    x_noisy = x + zeta * ||x||_2 * eps,

where ``eps`` is a unit-norm Gaussian direction and ``zeta`` the noise level
(the paper sweeps zeta in {0, 0.1, 0.25, 0.5}).  The noise energy is therefore
a fixed fraction ``zeta`` of the signal energy per measurement vector,
independent of the network size or excitation strength.
"""

from __future__ import annotations

import numpy as np

from repro.measurements.generator import MeasurementSet

__all__ = ["add_measurement_noise"]


def add_measurement_noise(
    measurements: MeasurementSet | np.ndarray,
    noise_level: float,
    *,
    seed: int | None = 0,
) -> MeasurementSet | np.ndarray:
    """Apply the paper's multiplicative Gaussian noise to voltage measurements.

    Parameters
    ----------
    measurements:
        A :class:`MeasurementSet` (returned with noisy voltages, currents kept
        as-is) or a bare ``(N, M)`` voltage matrix (returned as a matrix).
    noise_level:
        The ``zeta`` parameter; 0 returns the input unchanged.
    seed:
        Seed for the Gaussian noise directions.
    """
    if noise_level < 0:
        raise ValueError("noise_level must be non-negative")
    if noise_level == 0:
        return measurements

    rng = np.random.default_rng(seed)

    def perturb(voltages: np.ndarray) -> np.ndarray:
        voltages = np.asarray(voltages, dtype=np.float64)
        noisy = voltages.copy()
        for j in range(voltages.shape[1]):
            direction = rng.standard_normal(voltages.shape[0])
            norm = np.linalg.norm(direction)
            if norm == 0:
                continue
            direction /= norm
            noisy[:, j] = voltages[:, j] + noise_level * np.linalg.norm(voltages[:, j]) * direction
        return noisy

    if isinstance(measurements, MeasurementSet):
        return MeasurementSet(
            voltages=perturb(measurements.voltages),
            currents=measurements.currents,
            noise_level=float(noise_level),
        )
    matrix = np.asarray(measurements, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[:, None]
        return perturb(matrix)[:, 0]
    return perturb(matrix)
