"""Measurement simulation: currents, voltages, noise, JL sketches, node subsets.

The paper's experimental setup (Sec. III-A) drives the ground-truth resistor
network with random current excitations and records the resulting node
voltages; SGL then learns the network back from those (X, Y) pairs.  This
subpackage implements that full measurement pipeline:

* :mod:`generator` -- random Gaussian current vectors orthogonal to the
  all-one vector and the corresponding voltage solves (default setup);
* :mod:`jl`        -- the Johnson-Lindenstrauss measurement construction of
  Sec. II-D used in the sample-complexity analysis;
* :mod:`noise`     -- the multiplicative Gaussian noise model of Fig. 9;
* :mod:`reduction` -- node-subset voltage sampling for learning reduced
  networks (Fig. 8).
"""

from repro.measurements.generator import MeasurementSet, simulate_measurements
from repro.measurements.jl import jl_measurements, jl_project, jl_projection_matrix
from repro.measurements.noise import add_measurement_noise
from repro.measurements.reduction import sample_node_subset, subset_measurements

__all__ = [
    "MeasurementSet",
    "simulate_measurements",
    "jl_measurements",
    "jl_project",
    "jl_projection_matrix",
    "add_measurement_noise",
    "sample_node_subset",
    "subset_measurements",
]
