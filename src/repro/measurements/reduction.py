"""Node-subset voltage sampling for reduced-network learning (paper Fig. 8).

In the reduced-network experiment, SGL only observes the voltages of a small
randomly chosen fraction (10--20%) of the circuit nodes, and no currents at
all.  Learning a graph over those observed nodes yields a 5-10x smaller
resistor network that still preserves the original graph's low-end spectrum
(the paper reports eigenvalue correlation coefficients of 0.999 / 0.994).

The natural reference model for what such a reduced network *should* look
like is the Kron reduction of the original network onto the observed nodes
(implemented in :mod:`repro.baselines.kron`), because Kron reduction exactly
preserves effective resistances between retained nodes -- the same quantity
the voltage distances encode.
"""

from __future__ import annotations

import numpy as np

from repro.measurements.generator import MeasurementSet

__all__ = ["sample_node_subset", "subset_measurements"]


def sample_node_subset(
    n_nodes: int,
    fraction: float,
    *,
    seed: int | None = 0,
    minimum: int = 2,
) -> np.ndarray:
    """Sorted indices of a uniformly random node subset of size ``fraction * N``."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    if n_nodes < minimum:
        raise ValueError("n_nodes too small")
    rng = np.random.default_rng(seed)
    size = max(minimum, int(round(fraction * n_nodes)))
    size = min(size, n_nodes)
    return np.sort(rng.choice(n_nodes, size=size, replace=False))


def subset_measurements(
    measurements: MeasurementSet,
    fraction: float,
    *,
    seed: int | None = 0,
) -> tuple[MeasurementSet, np.ndarray]:
    """Restrict measurements to a random node subset (voltages only).

    Returns the reduced :class:`MeasurementSet` (currents dropped, matching
    the paper's experiment which uses no current measurements) and the sorted
    array of selected original node indices.
    """
    nodes = sample_node_subset(measurements.n_nodes, fraction, seed=seed)
    return measurements.restrict_to_nodes(nodes), nodes
