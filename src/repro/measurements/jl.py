"""Johnson-Lindenstrauss measurement construction (paper Sec. II-D).

The sample-complexity analysis of the paper constructs a voltage measurement
matrix ``X`` whose pairwise column-space distances are (1 +/- eps)
approximations of the effective resistances of the ground-truth graph:

1. draw a random ``+/- 1/sqrt(M)`` matrix ``C`` of shape ``(M, |E|)`` with
   ``M = ceil(24 log N / eps^2)``;
2. form ``Y = C W^{1/2} B`` (currents), where ``B`` is the oriented incidence
   matrix and ``W`` the diagonal edge-weight matrix of the ground truth;
3. solve ``L* x_i = y_i`` for every row of ``C`` and stack the solutions as
   the columns of ``X``.

Then ``||X^T (e_s - e_t)||^2`` approximates ``R_eff(s, t)`` for *every* node
pair simultaneously, which is what makes O(log N) measurements sufficient for
SGL to recover the network.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.solvers import LaplacianSolver
from repro.measurements.generator import MeasurementSet

__all__ = ["jl_measurement_count", "jl_measurements"]


def jl_measurement_count(n_nodes: int, epsilon: float, *, constant: float = 24.0) -> int:
    """Number of measurements ``M = ceil(constant * log N / eps^2)`` from the paper."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if epsilon <= 0 or epsilon >= 1:
        raise ValueError("epsilon must be in (0, 1)")
    return int(np.ceil(constant * np.log(n_nodes) / epsilon**2))


def jl_measurements(
    graph: WeightedGraph,
    *,
    epsilon: float = 0.5,
    n_measurements: int | None = None,
    seed: int | None = 0,
    solver: LaplacianSolver | None = None,
) -> MeasurementSet:
    """Generate measurements via the JL construction of Sec. II-D.

    Parameters
    ----------
    graph:
        Ground-truth resistor network ``G*``.
    epsilon:
        Target distortion of the effective-resistance embedding; sets
        ``M = ceil(24 log N / eps^2)`` unless ``n_measurements`` is given.
    n_measurements:
        Explicit measurement count ``M`` (overrides ``epsilon``).  The paper's
        theory wants the ``24 log N / eps^2`` value, but in practice far fewer
        measurements already give usable embeddings (Fig. 10).
    seed:
        Seed for the random sign matrix ``C``.
    solver:
        Optional pre-built Laplacian solver to reuse.

    Returns
    -------
    MeasurementSet
        Voltages ``X`` (one column per row of ``C``) and currents ``Y``.
    """
    if n_measurements is None:
        n_measurements = jl_measurement_count(graph.n_nodes, epsilon)
    if n_measurements < 1:
        raise ValueError("n_measurements must be at least 1")
    if solver is None:
        solver = LaplacianSolver(graph)

    rng = np.random.default_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=(n_measurements, graph.n_edges))
    signs /= np.sqrt(n_measurements)

    incidence = graph.incidence_matrix()          # (|E|, N) rows e_s - e_t
    sqrt_w = np.sqrt(graph.weights)               # W^{1/2} diagonal
    # Y^T = C W^{1/2} B  =>  Y = B^T W^{1/2} C^T, one column per measurement.
    currents = incidence.T @ (sqrt_w[:, None] * signs.T)
    voltages = solver.solve(currents)
    return MeasurementSet(voltages=voltages, currents=currents, noise_level=0.0)
