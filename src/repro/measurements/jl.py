"""Johnson-Lindenstrauss measurement construction (paper Sec. II-D).

The sample-complexity analysis of the paper constructs a voltage measurement
matrix ``X`` whose pairwise column-space distances are (1 +/- eps)
approximations of the effective resistances of the ground-truth graph:

1. draw a random ``+/- 1/sqrt(M)`` matrix ``C`` of shape ``(M, |E|)`` with
   ``M = ceil(24 log N / eps^2)``;
2. form ``Y = C W^{1/2} B`` (currents), where ``B`` is the oriented incidence
   matrix and ``W`` the diagonal edge-weight matrix of the ground truth;
3. solve ``L* x_i = y_i`` for every row of ``C`` and stack the solutions as
   the columns of ``X``.

Then ``||X^T (e_s - e_t)||^2`` approximates ``R_eff(s, t)`` for *every* node
pair simultaneously, which is what makes O(log N) measurements sufficient for
SGL to recover the network.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.solvers import LaplacianSolver
from repro.measurements.generator import MeasurementSet

__all__ = [
    "jl_measurement_count",
    "jl_measurements",
    "jl_project",
    "jl_projection_matrix",
]


def jl_measurement_count(n_nodes: int, epsilon: float, *, constant: float = 24.0) -> int:
    """Number of measurements ``M = ceil(constant * log N / eps^2)`` from the paper."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if epsilon <= 0 or epsilon >= 1:
        raise ValueError("epsilon must be in (0, 1)")
    return int(np.ceil(constant * np.log(n_nodes) / epsilon**2))


def jl_projection_matrix(
    n_dims: int, sketch_dim: int, *, seed: int | None = 0
) -> np.ndarray:
    """Random ``+/- 1/sqrt(sketch_dim)`` JL projection of shape ``(n_dims, sketch_dim)``.

    This is the sign-matrix construction of Sec. II-D (Achlioptas-style JL):
    right-multiplying an ``(N, n_dims)`` matrix by it preserves pairwise row
    distances up to the JL distortion.  It is shared by the measurement
    construction below (where rows of ``C`` sketch edge space) and by the
    ``jl`` search backend of :mod:`repro.knn.backends` (where it compresses
    measurement features before the candidate search).

    Examples
    --------
    >>> from repro.measurements.jl import jl_projection_matrix
    >>> projection = jl_projection_matrix(50, 8, seed=0)
    >>> projection.shape
    (50, 8)
    >>> bool((abs(projection) == 1 / 8**0.5).all())
    True
    """
    if n_dims < 1 or sketch_dim < 1:
        raise ValueError("n_dims and sketch_dim must be at least 1")
    rng = np.random.default_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=(sketch_dim, n_dims))
    return signs.T / np.sqrt(sketch_dim)


def jl_project(
    features: np.ndarray, sketch_dim: int, *, seed: int | None = 0
) -> np.ndarray:
    """Sketch the rows of ``features`` down to ``sketch_dim`` dimensions.

    Convenience wrapper: ``features @ jl_projection_matrix(M, sketch_dim)``.
    Row distances are preserved up to the JL distortion, which is what lets
    the ``jl`` kNN backend search a compressed copy of the measurement
    matrix.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.measurements.jl import jl_project
    >>> x = np.random.default_rng(0).standard_normal((100, 40))
    >>> jl_project(x, 8, seed=1).shape
    (100, 8)
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D (N, M) array")
    return features @ jl_projection_matrix(features.shape[1], sketch_dim, seed=seed)


def jl_measurements(
    graph: WeightedGraph,
    *,
    epsilon: float = 0.5,
    n_measurements: int | None = None,
    seed: int | None = 0,
    solver: LaplacianSolver | None = None,
) -> MeasurementSet:
    """Generate measurements via the JL construction of Sec. II-D.

    Parameters
    ----------
    graph:
        Ground-truth resistor network ``G*``.
    epsilon:
        Target distortion of the effective-resistance embedding; sets
        ``M = ceil(24 log N / eps^2)`` unless ``n_measurements`` is given.
    n_measurements:
        Explicit measurement count ``M`` (overrides ``epsilon``).  The paper's
        theory wants the ``24 log N / eps^2`` value, but in practice far fewer
        measurements already give usable embeddings (Fig. 10).
    seed:
        Seed for the random sign matrix ``C``.
    solver:
        Optional pre-built Laplacian solver to reuse.

    Returns
    -------
    MeasurementSet
        Voltages ``X`` (one column per row of ``C``) and currents ``Y``.
    """
    if n_measurements is None:
        n_measurements = jl_measurement_count(graph.n_nodes, epsilon)
    if n_measurements < 1:
        raise ValueError("n_measurements must be at least 1")
    if solver is None:
        solver = LaplacianSolver(graph)

    # Rows of C sketch edge space: C = jl_projection_matrix(|E|, M)^T.
    signs = jl_projection_matrix(graph.n_edges, n_measurements, seed=seed).T

    incidence = graph.incidence_matrix()          # (|E|, N) rows e_s - e_t
    sqrt_w = np.sqrt(graph.weights)               # W^{1/2} diagonal
    # Y^T = C W^{1/2} B  =>  Y = B^T W^{1/2} C^T, one column per measurement.
    currents = incidence.T @ (sqrt_w[:, None] * signs.T)
    voltages = solver.solve(currents)
    return MeasurementSet(voltages=voltages, currents=currents, noise_level=0.0)
