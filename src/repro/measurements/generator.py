"""Voltage / current measurement simulation (paper Sec. III-A).

The experimental procedure of the paper is:

1. draw ``M`` current-source vectors with i.i.d. standard-normal entries;
2. normalise each current vector and project it orthogonal to the all-one
   vector (so it is a valid Kirchhoff excitation with zero net current);
3. solve the ground-truth Laplacian ``L* x_i = y_i`` for the node voltages;
4. stack voltages and currents into ``X, Y in R^{N x M}``.

:func:`simulate_measurements` implements exactly this and returns a
:class:`MeasurementSet`, the input object consumed by the SGL learner, the
baselines and the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.solvers import LaplacianSolver

__all__ = ["MeasurementSet", "simulate_measurements", "random_current_vectors"]


@dataclass(frozen=True)
class MeasurementSet:
    """A bundle of linear measurements of a resistor network.

    Attributes
    ----------
    voltages:
        ``X in R^{N x M}``; column ``i`` is the voltage response to the i-th
        current excitation.
    currents:
        ``Y in R^{N x M}``; may be ``None`` when only voltages are available
        (e.g. the reduced-network learning experiment of Fig. 8, which uses a
        subset of node voltages and no currents).
    noise_level:
        The multiplicative noise level ``zeta`` applied to the voltages
        (0 for noiseless measurements).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.measurements import MeasurementSet
    >>> data = MeasurementSet(np.zeros((4, 10)))
    >>> data.n_nodes, data.n_measurements, data.has_currents
    (4, 10, False)
    """

    voltages: np.ndarray
    currents: np.ndarray | None = None
    noise_level: float = 0.0

    def __post_init__(self) -> None:
        voltages = np.asarray(self.voltages, dtype=np.float64)
        object.__setattr__(self, "voltages", voltages)
        if voltages.ndim != 2:
            raise ValueError("voltages must be an (N, M) matrix")
        if self.currents is not None:
            currents = np.asarray(self.currents, dtype=np.float64)
            if currents.shape != voltages.shape:
                raise ValueError("currents must have the same shape as voltages")
            object.__setattr__(self, "currents", currents)

    @property
    def n_nodes(self) -> int:
        """Number of nodes ``N``."""
        return self.voltages.shape[0]

    @property
    def n_measurements(self) -> int:
        """Number of measurement pairs ``M``."""
        return self.voltages.shape[1]

    @property
    def has_currents(self) -> bool:
        """Whether current excitations are available (needed for edge scaling)."""
        return self.currents is not None

    def with_voltages(self, voltages: np.ndarray, **changes) -> "MeasurementSet":
        """Return a copy with the voltage matrix (and other fields) replaced."""
        return replace(self, voltages=voltages, **changes)

    def subset_measurements(self, indices: np.ndarray | list[int]) -> "MeasurementSet":
        """Keep only the measurement columns in ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        currents = None if self.currents is None else self.currents[:, indices]
        return MeasurementSet(self.voltages[:, indices], currents, self.noise_level)

    def restrict_to_nodes(self, nodes: np.ndarray | list[int]) -> "MeasurementSet":
        """Keep only the rows (nodes) in ``nodes``; currents are dropped.

        This models observing voltages at a subset of circuit nodes only,
        which is the setting of the paper's reduced-network experiment.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        return MeasurementSet(self.voltages[nodes], None, self.noise_level)


def random_current_vectors(
    n_nodes: int,
    n_measurements: int,
    *,
    rng: np.random.Generator | None = None,
    seed: int | None = 0,
) -> np.ndarray:
    """Random current excitations: unit-norm, orthogonal to the all-one vector."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if n_measurements < 1:
        raise ValueError("need at least one measurement")
    if rng is None:
        rng = np.random.default_rng(seed)
    currents = rng.standard_normal((n_nodes, n_measurements))
    currents -= currents.mean(axis=0, keepdims=True)
    norms = np.linalg.norm(currents, axis=0, keepdims=True)
    norms[norms == 0] = 1.0
    return currents / norms


def simulate_measurements(
    graph: WeightedGraph,
    n_measurements: int = 50,
    *,
    seed: int | None = 0,
    solver: LaplacianSolver | None = None,
) -> MeasurementSet:
    """Simulate the paper's measurement procedure on a ground-truth network.

    Parameters
    ----------
    graph:
        The ground-truth resistor network ``G*`` (must be connected).
    n_measurements:
        Number of (voltage, current) pairs ``M``; the paper defaults to 50.
    seed:
        Seed for the random current excitations.
    solver:
        Optional pre-built solver for the graph Laplacian (reused across
        calls by the experiment harness).

    Returns
    -------
    MeasurementSet
        Noiseless voltages ``X`` and currents ``Y``.

    Examples
    --------
    >>> from repro import simulate_measurements
    >>> from repro.graphs.generators import grid_2d
    >>> data = simulate_measurements(grid_2d(5, 5), n_measurements=20, seed=0)
    >>> data.voltages.shape, data.has_currents
    ((25, 20), True)
    """
    if solver is None:
        solver = LaplacianSolver(graph)
    currents = random_current_vectors(graph.n_nodes, n_measurements, seed=seed)
    voltages = solver.solve(currents)
    return MeasurementSet(voltages=voltages, currents=currents, noise_level=0.0)
