"""The paper's experimental comparator: a spectrally scaled kNN graph.

The paper compares SGL against "the graph construction method based on the
standard kNN algorithm" (Sec. III): build a k-nearest-neighbour graph from the
voltage measurements with the same ``M / distance^2`` weights, then apply the
same Step-5 edge scaling (Eqs. 21-23) so the comparison is fair with respect
to the global conductance scale.  The resulting graph is ~3x denser than the
SGL-learned one yet approximates the original spectrum worse (Figs. 2-6).
"""

from __future__ import annotations

import numpy as np

from repro.core.scaling import spectral_edge_scaling
from repro.graphs.graph import WeightedGraph
from repro.knn.knn_graph import knn_graph
from repro.measurements.generator import MeasurementSet

__all__ = ["scaled_knn_baseline"]


def scaled_knn_baseline(
    measurements: MeasurementSet | np.ndarray,
    k: int = 5,
    *,
    currents: np.ndarray | None = None,
    apply_scaling: bool = True,
) -> WeightedGraph:
    """Build the scaled kNN baseline graph from voltage measurements.

    Parameters
    ----------
    measurements:
        A :class:`~repro.measurements.MeasurementSet` or a bare ``(N, M)``
        voltage matrix.
    k:
        Number of nearest neighbours (the paper uses 5, hence "5NN graph").
    currents:
        Current excitations used for edge scaling when ``measurements`` is a
        bare matrix.
    apply_scaling:
        Apply Step-5 spectral edge scaling when currents are available.
    """
    if isinstance(measurements, MeasurementSet):
        voltages = measurements.voltages
        currents = measurements.currents
    else:
        voltages = np.asarray(measurements, dtype=np.float64)
    graph = knn_graph(voltages, k, weight_scheme="sgl", ensure_connected=True)
    if apply_scaling and currents is not None:
        graph, _ = spectral_edge_scaling(graph, voltages, currents)
    return graph
