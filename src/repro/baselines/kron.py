"""Kron reduction of resistor networks.

Kron reduction (Schur complement of the Laplacian onto a retained node set)
is the canonical way to build a smaller electrically equivalent network: it
exactly preserves the effective resistances between every pair of retained
nodes.  The paper's reduced-network experiment (Fig. 8) learns a graph from
the voltages of 10-20% of the nodes; since those voltages encode effective
resistances between observed nodes, the Kron-reduced network is the natural
ground truth the learned reduced graph should resemble -- and is what the
reproduction's Fig. 8 driver compares against.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import WeightedGraph

__all__ = ["kron_reduction"]


def kron_reduction(
    graph: WeightedGraph,
    keep_nodes: np.ndarray | list[int],
    *,
    weight_threshold: float = 1e-10,
) -> WeightedGraph:
    """Kron-reduce ``graph`` onto ``keep_nodes``.

    Computes the Schur complement
    ``L_red = L_AA - L_AB L_BB^{-1} L_BA`` where ``A`` is the retained node
    set, and converts it back into a weighted graph (off-diagonal entries
    whose magnitude falls below ``weight_threshold`` times the largest weight
    are dropped; Kron reduction generally produces dense fill-in, so the
    result can have O(|A|^2) edges).

    Parameters
    ----------
    graph:
        Connected resistor network.
    keep_nodes:
        Nodes to retain (order defines the new node numbering).
    weight_threshold:
        Relative threshold below which reduced edge weights are discarded.
    """
    keep = np.asarray(keep_nodes, dtype=np.int64)
    if keep.size < 2:
        raise ValueError("need at least two retained nodes")
    if np.unique(keep).size != keep.size:
        raise ValueError("keep_nodes must be unique")
    n = graph.n_nodes
    if keep.min() < 0 or keep.max() >= n:
        raise ValueError("keep_nodes out of range")
    mask = np.zeros(n, dtype=bool)
    mask[keep] = True
    eliminate = np.where(~mask)[0]

    laplacian = graph.laplacian().tocsc()
    if eliminate.size == 0:
        reduced = laplacian[keep][:, keep].toarray()
    else:
        l_aa = laplacian[keep][:, keep].toarray()
        l_ab = laplacian[keep][:, eliminate].toarray()
        l_bb = laplacian[eliminate][:, eliminate].tocsc()
        # L_BB is nonsingular for a connected graph with a nonempty retained set.
        solve = spla.splu(l_bb)
        correction = l_ab @ solve.solve(l_ab.T)
        reduced = l_aa - correction

    # Convert the reduced Laplacian back into a graph.
    reduced = 0.5 * (reduced + reduced.T)
    off_diag = -reduced
    np.fill_diagonal(off_diag, 0.0)
    max_weight = float(np.max(off_diag)) if off_diag.size else 0.0
    threshold = weight_threshold * max(max_weight, 1e-300)
    rows, cols = np.where(np.triu(off_diag, k=1) > threshold)
    weights = off_diag[rows, cols]
    return WeightedGraph(keep.size, rows, cols, weights)
