"""Baselines and reference methods the paper compares against (or builds on).

* :mod:`knn_baseline`      -- the scaled kNN graph the paper uses as its
  experimental comparator (Sec. III);
* :mod:`glasso`            -- a small-scale GSP graphical-Lasso Laplacian
  estimator (projected gradient ascent), standing in for the CVX-based
  state-of-the-art methods [2], [3] that are too slow to run at scale;
* :mod:`spectral_sparsify` -- Spielman-Srivastava effective-resistance
  sparsification [10], the "dual" of SGL's densification view;
* :mod:`kron`              -- Kron reduction, the reference model for the
  reduced-network learning experiment (Fig. 8).
"""

from repro.baselines.knn_baseline import scaled_knn_baseline
from repro.baselines.glasso import GraphicalLassoResult, gsp_graphical_lasso
from repro.baselines.spectral_sparsify import spectral_sparsify
from repro.baselines.kron import kron_reduction

__all__ = [
    "scaled_knn_baseline",
    "GraphicalLassoResult",
    "gsp_graphical_lasso",
    "spectral_sparsify",
    "kron_reduction",
]
