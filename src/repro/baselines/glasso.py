"""GSP graphical-Lasso Laplacian estimation (small-scale reference baseline).

The state-of-the-art graph-learning methods the paper cites ([2], [3]) solve
the convex problem of Eq. (2) with generic solvers (CVX) whose per-iteration
cost is at least O(N^2); the paper excludes them from its experiments because
they take thousands of seconds even on the smallest test case.  To still be
able to validate SGL's solution quality against a direct optimiser (on small
graphs), this module implements a projected-gradient-ascent Laplacian
estimator for the same objective:

    maximise  F(w) = log pdet(L(w) + I/sigma^2) - (1/M) Tr(X^T Theta X) - 4 beta sum(w)
    subject to  w_e >= 0  for every candidate edge e,

where the gradient with respect to an edge weight is exactly Eq. (4):
``dF/dw_st = (e_s - e_t)^T Theta^{-1} (e_s - e_t) - ||X^T e_st||^2 / M - 4 beta``.
Each iteration recomputes a dense (pseudo-)inverse, so the method is O(N^3)
per iteration -- use it only for N up to a few hundred nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sensitivity import data_distances_squared
from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import laplacian_from_edges
from repro.linalg.pseudoinverse import laplacian_pseudoinverse

__all__ = ["GraphicalLassoResult", "gsp_graphical_lasso"]


@dataclass(frozen=True)
class GraphicalLassoResult:
    """Result of the projected-gradient graphical-Lasso estimation."""

    graph: WeightedGraph
    objective_history: np.ndarray
    converged: bool

    @property
    def n_iterations(self) -> int:
        """Number of gradient iterations performed."""
        return int(self.objective_history.size)


def _all_pairs(n_nodes: int) -> np.ndarray:
    rows, cols = np.triu_indices(n_nodes, k=1)
    return np.column_stack([rows, cols])


def _objective_and_inverse(
    n_nodes: int,
    edges: np.ndarray,
    weights: np.ndarray,
    z_data: np.ndarray,
    n_measurements: int,
    sigma_sq: float,
    beta: float,
) -> tuple[float, np.ndarray]:
    """Objective value of Eq. (2) and the dense Theta^{-1} (or L^+)."""
    laplacian = laplacian_from_edges(n_nodes, edges, weights).toarray()
    shift = 0.0 if not np.isfinite(sigma_sq) else 1.0 / sigma_sq
    theta = laplacian + shift * np.eye(n_nodes)
    eigenvalues = np.linalg.eigvalsh(theta)
    if shift == 0.0:
        nonzero = eigenvalues[1:]
        if np.any(nonzero <= 1e-14):
            return -np.inf, laplacian_pseudoinverse(laplacian)
        log_det = float(np.sum(np.log(nonzero)))
        inverse = laplacian_pseudoinverse(laplacian)
    else:
        if np.any(eigenvalues <= 0):
            return -np.inf, np.linalg.pinv(theta)
        log_det = float(np.sum(np.log(eigenvalues)))
        inverse = np.linalg.inv(theta)
    # Tr(X^T L X) = sum_e w_e ||X^T e_st||^2; the sigma^2 shift adds a constant
    # (||X||_F^2 / (M sigma^2)) that does not depend on the weights, so it is
    # omitted from the reported objective.
    trace_term = float(np.sum(weights * z_data)) / n_measurements
    l1_term = 4.0 * beta * float(np.sum(weights))
    return log_det - trace_term - l1_term, inverse


def gsp_graphical_lasso(
    voltages: np.ndarray,
    *,
    candidate_edges: np.ndarray | None = None,
    sigma_sq: float = np.inf,
    beta: float = 0.0,
    max_iterations: int = 200,
    step_size: float = 0.05,
    tol: float = 1e-6,
    seed: int | None = 0,
) -> GraphicalLassoResult:
    """Estimate a graph Laplacian from measurements by projected gradient ascent.

    Parameters
    ----------
    voltages:
        Measurement matrix ``X`` of shape ``(N, M)``; N should be at most a
        few hundred (the method is O(N^3) per iteration).
    candidate_edges:
        Optional ``(m, 2)`` array restricting which edges may receive weight;
        defaults to all node pairs.
    sigma_sq, beta:
        Objective parameters of Eq. (2).
    max_iterations, step_size, tol:
        Optimiser controls; ``step_size`` is the initial step of a halving
        (backtracking) line search, and ``tol`` the relative objective
        improvement below which the optimiser stops.
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    if voltages.ndim != 2:
        raise ValueError("voltages must be an (N, M) matrix")
    n_nodes, n_measurements = voltages.shape
    if n_nodes > 600:
        raise ValueError(
            "gsp_graphical_lasso is a dense O(N^3)-per-iteration reference method; "
            "use SGLearner for graphs with more than a few hundred nodes"
        )
    edges = _all_pairs(n_nodes) if candidate_edges is None else np.asarray(
        candidate_edges, dtype=np.int64
    ).reshape(-1, 2)
    z_data = data_distances_squared(voltages, edges)
    floor = max(float(z_data.max(initial=0.0)), 1.0) * 1e-12
    z_data = np.maximum(z_data, floor)

    # Initialise with the paper's similarity weights (a dense, feasible point).
    weights = n_measurements / z_data

    history: list[float] = []
    objective, inverse = _objective_and_inverse(
        n_nodes, edges, weights, z_data, n_measurements, sigma_sq, beta
    )
    converged = False
    step = step_size
    for _ in range(max_iterations):
        history.append(objective)
        # Gradient of Eq. (4): Theta^{-1} quadratic form minus data term.
        diffs = inverse[edges[:, 0]] - inverse[edges[:, 1]]
        quad = diffs[np.arange(edges.shape[0]), edges[:, 0]] - diffs[
            np.arange(edges.shape[0]), edges[:, 1]
        ]
        gradient = quad - z_data / n_measurements - 4.0 * beta

        # Backtracking projected gradient step (scale-invariant step length).
        scale = np.maximum(np.abs(weights), 1e-12)
        improved = False
        trial_step = step
        for _ in range(30):
            trial = np.maximum(weights + trial_step * scale * gradient, 0.0)
            trial_obj, trial_inv = _objective_and_inverse(
                n_nodes, edges, trial, z_data, n_measurements, sigma_sq, beta
            )
            if np.isfinite(trial_obj) and trial_obj >= objective:
                improved = True
                break
            trial_step *= 0.5
        if not improved:
            converged = True
            break
        relative_gain = (trial_obj - objective) / max(abs(objective), 1.0)
        weights, objective, inverse = trial, trial_obj, trial_inv
        step = min(step_size, trial_step * 2.0)
        if relative_gain < tol:
            converged = True
            break
    history.append(objective)

    keep = weights > 1e-10 * max(float(weights.max(initial=0.0)), 1.0)
    graph = WeightedGraph(n_nodes, edges[keep, 0], edges[keep, 1], weights[keep])
    return GraphicalLassoResult(
        graph=graph,
        objective_history=np.asarray(history, dtype=np.float64),
        converged=converged,
    )
