"""Spectral sparsification by effective resistances (Spielman-Srivastava [10]).

The paper frames SGL as the *densification* dual of spectral sparsification:
sparsification starts from a dense graph and samples edges with probability
proportional to their leverage scores ``w_e R_eff(e)``; SGL starts from a tree
and adds edges until their leverage-like distortions reach one.  Having the
sparsifier in the library serves two purposes: it is an ablation baseline
(sparsify the kNN graph instead of densifying a tree) and a direct validation
of the effective-resistance machinery.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.pseudoinverse import effective_resistances_jl
from repro.linalg.solvers import LaplacianSolver
from repro.linalg.pseudoinverse import effective_resistance

__all__ = ["spectral_sparsify"]


def spectral_sparsify(
    graph: WeightedGraph,
    *,
    epsilon: float = 0.5,
    n_samples: int | None = None,
    exact_resistances: bool = False,
    seed: int | None = 0,
) -> WeightedGraph:
    """Sample a spectral sparsifier of ``graph``.

    Edges are sampled (with replacement) with probability proportional to
    their leverage scores ``w_e R_eff(e)``; each sampled copy is added with
    weight ``w_e / (q p_e)`` so the sparsifier's Laplacian is an unbiased
    estimator of the original.  The classical guarantee needs
    ``q = O(N log N / eps^2)`` samples for a ``(1 +/- eps)`` spectral
    approximation.

    Parameters
    ----------
    graph:
        Connected weighted graph to sparsify.
    epsilon:
        Target spectral approximation quality (drives the default sample
        count ``q = ceil(9 N log N / eps^2)``, capped at 20x the edge count).
    n_samples:
        Explicit number of edge samples ``q`` (overrides ``epsilon``).
    exact_resistances:
        Compute leverage scores from exact effective resistances (O(|E|)
        Laplacian solves) instead of the JL sketch; useful for tests.
    seed:
        Seed for both the resistance sketch and the edge sampling.
    """
    if graph.n_edges == 0:
        return graph.copy()
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    n = graph.n_nodes
    rng = np.random.default_rng(seed)

    if exact_resistances:
        solver = LaplacianSolver(graph)
        resistances = effective_resistance(graph, graph.edges, solver=solver)
    else:
        resistances = effective_resistances_jl(graph, epsilon=min(epsilon, 0.5), seed=seed)

    leverage = graph.weights * np.maximum(resistances, 0.0)
    total = leverage.sum()
    if total <= 0:
        return graph.copy()
    probabilities = leverage / total

    if n_samples is None:
        n_samples = int(np.ceil(9.0 * n * np.log(max(n, 2)) / epsilon**2))
        n_samples = min(n_samples, 20 * graph.n_edges)
    n_samples = max(1, int(n_samples))

    counts = rng.multinomial(n_samples, probabilities)
    sampled = counts > 0
    new_weights = (
        graph.weights[sampled]
        * counts[sampled]
        / (n_samples * probabilities[sampled])
    )
    return WeightedGraph(
        n, graph.rows[sampled], graph.cols[sampled], new_weights
    )
