"""Pytest bootstrap: make ``src/`` importable without an installed package.

The library is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on offline machines without the ``wheel``
package); this shim keeps ``pytest`` working straight from a source checkout
either way.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
