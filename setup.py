"""Legacy setuptools entry point.

Kept so that ``pip install -e .`` works in offline environments whose
setuptools/wheel versions predate PEP 660 editable installs; all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
